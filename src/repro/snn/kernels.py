"""Post-synaptic-current (PSC) kernels.

A kernel assigns to every time step the post-synaptic contribution of a spike
arriving at that step (the ``epsilon`` spike-response kernel of Eq. 1 in the
paper, evaluated on the discrete simulation grid).  Neural coders pair a spike
*placement* rule with a kernel:

* rate coding      -- :class:`ConstantKernel` (every spike counts the same),
* phase coding     -- :class:`PhaseKernel` (weight ``2^-(1 + t mod K)``),
* burst coding     -- :class:`BurstKernel` (geometric weights within a burst
  window),
* TTFS / TTAS      -- :class:`ExponentialKernel` (exponentially decaying
  weight, earlier spikes carry more information).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class PSCKernel:
    """Base class: maps spike arrival step to post-synaptic weight."""

    def weights(self, num_steps: int) -> np.ndarray:
        """Return the length-``num_steps`` array of per-step spike weights."""
        raise NotImplementedError

    def weight_at(self, step: int, num_steps: int) -> float:
        """Weight of a single spike arriving at ``step``."""
        return float(self.weights(num_steps)[step])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ConstantKernel(PSCKernel):
    """Every spike contributes the same amount (rate coding).

    Parameters
    ----------
    amplitude:
        Contribution of a single spike.  The rate coder sets this to ``1/T``
        so that a neuron firing on every step decodes to activation 1.
    """

    def __init__(self, amplitude: float = 1.0):
        check_positive("amplitude", amplitude)
        self.amplitude = float(amplitude)

    def weights(self, num_steps: int) -> np.ndarray:
        check_positive("num_steps", num_steps)
        return np.full(int(num_steps), self.amplitude, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantKernel(amplitude={self.amplitude})"


class PhaseKernel(PSCKernel):
    """Phase-coding kernel: weight ``2^-(1 + (t mod period))``.

    This reproduces the weighted-spike scheme of Kim et al. (2018): the phase
    of the global oscillator determines the significance of a spike, so a
    period of ``K`` phases gives a K-bit binary representation per period.
    """

    def __init__(self, period: int = 8):
        check_positive("period", period)
        self.period = int(period)

    def weights(self, num_steps: int) -> np.ndarray:
        check_positive("num_steps", num_steps)
        steps = np.arange(int(num_steps))
        return np.power(2.0, -(1.0 + (steps % self.period)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseKernel(period={self.period})"


class BurstKernel(PSCKernel):
    """Burst-coding kernel: geometric weights inside each burst window.

    Park et al. (DAC 2019) transmit information with short bursts whose
    inter-spike interval encodes significance.  On a discrete grid this
    reduces to a window of ``burst_length`` steps, repeated every
    ``period`` steps, in which the ``k``-th slot carries weight
    ``ratio^k * scale``.  Slots past ``burst_length`` carry the smallest
    weight so that late (jittered) spikes still contribute.
    """

    def __init__(self, period: int = 16, burst_length: int = 5, ratio: float = 0.5):
        check_positive("period", period)
        check_positive("burst_length", burst_length)
        check_positive("ratio", ratio)
        if burst_length > period:
            raise ValueError(
                f"burst_length ({burst_length}) cannot exceed period ({period})"
            )
        if ratio >= 1.0:
            raise ValueError(f"ratio must be < 1, got {ratio}")
        self.period = int(period)
        self.burst_length = int(burst_length)
        self.ratio = float(ratio)

    def weights(self, num_steps: int) -> np.ndarray:
        check_positive("num_steps", num_steps)
        steps = np.arange(int(num_steps))
        slot = steps % self.period
        slot = np.minimum(slot, self.burst_length - 1)
        return np.power(self.ratio, slot + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BurstKernel(period={self.period}, burst_length={self.burst_length}, "
            f"ratio={self.ratio})"
        )


class ExponentialKernel(PSCKernel):
    """Exponentially decaying kernel used by TTFS and TTAS coding.

    The weight of a spike at step ``t`` is ``exp(-t / tau)``: the earlier a
    neuron fires, the larger its post-synaptic contribution, exactly the
    dynamic-threshold formulation of T2FSNN (Park et al., DAC 2020) that this
    paper builds TTAS on.

    Parameters
    ----------
    tau:
        Decay constant in time steps.  When ``None`` the coder chooses
        ``tau = num_steps / dynamic_range_ln`` so the window covers a target
        dynamic range.
    """

    def __init__(self, tau: float):
        check_positive("tau", tau)
        self.tau = float(tau)

    def weights(self, num_steps: int) -> np.ndarray:
        check_positive("num_steps", num_steps)
        steps = np.arange(int(num_steps), dtype=np.float64)
        return np.exp(-steps / self.tau)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialKernel(tau={self.tau})"
