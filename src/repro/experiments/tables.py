"""Reproduction of Tables I and II, plus the hardware-fault table.

Table I reports, per dataset (MNIST, CIFAR-10, CIFAR-100) and per method
(rate/phase/burst/TTFS with weight scaling, TTAS with weight scaling), the
accuracy and spike counts at deletion probabilities {clean, 0.2, 0.5, 0.8}
plus their average.  Table II reports accuracy under jitter sigma
{clean, 1, 2, 3} for phase/burst/TTFS/TTAS without weight scaling.
:func:`table3_faults` extends the layout to the hardware-fault models
(dead neurons / stuck-at-firing / burst errors) of :mod:`repro.noise.faults`.

Both tables are built on :func:`repro.experiments.runner.run_sweeps`: the
cells of *all* datasets are compiled into one flat plan batch and dispatched
through the executor engine together, so a process pool shards whole
datasets across workers instead of sweeping them strictly serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.execution.executors import Executor
from repro.execution.store import ResultStore
from repro.experiments.config import (
    BENCH_ATTACK_BUDGETS,
    BENCH_SCALE,
    DEFAULT_MAX_CANDIDATES,
    DEFAULT_SHIFT_DELTA,
    AttackSweepConfig,
    ExperimentScale,
    FAULT_NOISE_KINDS,
    MethodSpec,
    SweepConfig,
    TABLE1_DELETION_LEVELS,
    TABLE2_JITTER_LEVELS,
    TABLE3_FAULT_LEVELS,
    filter_methods,
)
from repro.experiments.runner import (
    MethodCurve,
    SweepResult,
    run_attack_sweeps,
    run_sweeps,
)
from repro.experiments.workloads import PreparedWorkload


@dataclass
class TableRow:
    """One method's row of a results table.

    Attributes
    ----------
    dataset / method:
        Row identity.
    levels:
        Noise levels of the columns (0.0 is the "Clean" column).
    accuracies:
        Accuracy (%) per column, plus ``average_accuracy`` for "Avg.".
    spike_counts:
        Spikes per sample per column (Table I only), plus ``average_spikes``.
    """

    dataset: str
    method: str
    levels: List[float]
    accuracies: List[float]
    average_accuracy: float
    spike_counts: List[float] = field(default_factory=list)
    average_spikes: float = float("nan")


@dataclass
class TableResult:
    """A full table: rows grouped by dataset, plus provenance."""

    name: str
    rows: List[TableRow]
    noise_kind: str
    levels: List[float]

    def rows_for(self, dataset: str) -> List[TableRow]:
        return [row for row in self.rows if row.dataset == dataset]

    def row(self, dataset: str, method: str) -> TableRow:
        for candidate in self.rows_for(dataset):
            if candidate.method == method:
                return candidate
        raise KeyError(f"no row for ({dataset!r}, {method!r})")


def _nanmean(values: Sequence[float]) -> float:
    """Mean over the finite entries; NaN when none are finite.

    Holes (NaN cells left by fault-tolerant execution) are excluded so one
    failed cell degrades the "Avg." column gracefully instead of poisoning
    it to NaN outright.
    """
    finite = [value for value in values if not np.isnan(value)]
    return float(np.mean(finite)) if finite else float("nan")


def _curve_to_row(dataset: str, curve: MethodCurve, include_spikes: bool) -> TableRow:
    noisy = [
        (level, acc, sps)
        for level, acc, sps in zip(curve.levels, curve.accuracies, curve.spikes_per_sample)
        if level != 0.0
    ]
    average_accuracy = _nanmean([acc for _, acc, _ in noisy]) if noisy else float("nan")
    row = TableRow(
        dataset=dataset,
        method=curve.label,
        levels=list(curve.levels),
        accuracies=list(curve.accuracies),
        average_accuracy=average_accuracy,
    )
    if include_spikes:
        row.spike_counts = list(curve.spikes_per_sample)
        row.average_spikes = (
            _nanmean([sps for _, _, sps in noisy]) if noisy else float("nan")
        )
    return row


def _run_table(
    datasets: Sequence[str],
    methods: Sequence[MethodSpec],
    noise_kind: str,
    levels: Sequence[float],
    scale: ExperimentScale,
    seed: int,
    workloads: Optional[Dict[str, PreparedWorkload]],
    eval_size: Optional[int],
    include_spikes: bool,
    name: str,
    max_workers: Optional[int] = None,
    executor: Union[str, Executor, None] = None,
    store: Union[ResultStore, str, None, bool] = None,
    spike_backend: Optional[str] = None,
    analog_backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    simulator: Optional[str] = None,
    method_filter: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
) -> TableResult:
    configs = [
        SweepConfig(
            dataset=dataset,
            methods=filter_methods(methods, method_filter),
            noise_kind=noise_kind,
            levels=tuple(levels),
            scale=scale,
            seed=seed,
            spike_backend=spike_backend,
            analog_backend=analog_backend,
            simulator=simulator if simulator is not None else "transport",
        )
        for dataset in datasets
    ]
    sweeps: List[SweepResult] = run_sweeps(
        configs,
        workloads=workloads,
        eval_size=eval_size,
        batch_size=batch_size,
        max_workers=max_workers,
        executor=executor,
        store=store,
        shards=shards,
    )
    rows: List[TableRow] = []
    for config, sweep in zip(configs, sweeps):
        rows.extend(
            _curve_to_row(config.dataset, curve, include_spikes)
            for curve in sweep.curves
        )
    return TableResult(name=name, rows=rows, noise_kind=noise_kind, levels=list(levels))


def table1_deletion(
    datasets: Sequence[str] = ("mnist", "cifar10", "cifar100"),
    levels: Sequence[float] = TABLE1_DELETION_LEVELS,
    scale: ExperimentScale = BENCH_SCALE,
    seed: int = 0,
    workloads: Optional[Dict[str, PreparedWorkload]] = None,
    eval_size: Optional[int] = None,
    max_workers: Optional[int] = None,
    ttas_duration: int = 5,
    executor: Union[str, Executor, None] = None,
    store: Union[ResultStore, str, None, bool] = None,
    spike_backend: Optional[str] = None,
    analog_backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    simulator: Optional[str] = None,
    method_filter: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
) -> TableResult:
    """Table I: accuracy and spike counts under deletion, all methods + WS."""
    methods = [
        MethodSpec(coding="rate", weight_scaling=True),
        MethodSpec(coding="phase", weight_scaling=True),
        MethodSpec(coding="burst", weight_scaling=True),
        MethodSpec(coding="ttfs", weight_scaling=True),
        MethodSpec(coding="ttas", weight_scaling=True, target_duration=ttas_duration),
    ]
    return _run_table(
        datasets, methods, "deletion", levels, scale, seed, workloads, eval_size,
        include_spikes=True, name="Table I (spike deletion)",
        max_workers=max_workers, executor=executor, store=store,
        spike_backend=spike_backend, analog_backend=analog_backend,
        batch_size=batch_size, simulator=simulator, method_filter=method_filter,
        shards=shards,
    )


def table2_jitter(
    datasets: Sequence[str] = ("mnist", "cifar10", "cifar100"),
    levels: Sequence[float] = TABLE2_JITTER_LEVELS,
    scale: ExperimentScale = BENCH_SCALE,
    seed: int = 0,
    workloads: Optional[Dict[str, PreparedWorkload]] = None,
    eval_size: Optional[int] = None,
    max_workers: Optional[int] = None,
    ttas_duration: int = 10,
    executor: Union[str, Executor, None] = None,
    store: Union[ResultStore, str, None, bool] = None,
    spike_backend: Optional[str] = None,
    analog_backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    simulator: Optional[str] = None,
    method_filter: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
) -> TableResult:
    """Table II: accuracy under jitter for phase/burst/TTFS/TTAS (no WS)."""
    methods = [
        MethodSpec(coding="phase"),
        MethodSpec(coding="burst"),
        MethodSpec(coding="ttfs"),
        MethodSpec(coding="ttas", target_duration=ttas_duration),
    ]
    return _run_table(
        datasets, methods, "jitter", levels, scale, seed, workloads, eval_size,
        include_spikes=False, name="Table II (spike jitter)",
        max_workers=max_workers, executor=executor, store=store,
        spike_backend=spike_backend, analog_backend=analog_backend,
        batch_size=batch_size, simulator=simulator, method_filter=method_filter,
        shards=shards,
    )


#: Human-readable names of the hardware-fault table variants.
_FAULT_TABLE_NAMES = {
    "dead": "Table III (dead neurons)",
    "stuck": "Table III (stuck-at-firing)",
    "burst_error": "Table III (burst errors)",
}


def table3_faults(
    datasets: Sequence[str] = ("mnist", "cifar10", "cifar100"),
    fault_kind: str = "dead",
    levels: Sequence[float] = TABLE3_FAULT_LEVELS,
    scale: ExperimentScale = BENCH_SCALE,
    seed: int = 0,
    workloads: Optional[Dict[str, PreparedWorkload]] = None,
    eval_size: Optional[int] = None,
    max_workers: Optional[int] = None,
    ttas_duration: int = 5,
    executor: Union[str, Executor, None] = None,
    store: Union[ResultStore, str, None, bool] = None,
    spike_backend: Optional[str] = None,
    analog_backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    simulator: Optional[str] = None,
    method_filter: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
) -> TableResult:
    """Hardware-fault robustness table: accuracy and spike counts under one
    of the circuit-fault models (``fault_kind`` in ``"dead"`` / ``"stuck"``
    / ``"burst_error"``), all codings with weight scaling.

    The same table runs on either evaluator: ``simulator="transport"``
    (default) applies the fault at every layer interface of the fast
    activation-transport evaluator; ``simulator="timestep"`` applies it to
    the input train and as persistent per-layer masks inside the faithful
    membrane simulation, gated by each layer's temporal protocol window.
    """
    if fault_kind not in FAULT_NOISE_KINDS:
        raise ValueError(
            f"fault_kind must be one of {FAULT_NOISE_KINDS}, got {fault_kind!r}"
        )
    methods = [
        MethodSpec(coding="rate", weight_scaling=True),
        MethodSpec(coding="phase", weight_scaling=True),
        MethodSpec(coding="burst", weight_scaling=True),
        MethodSpec(coding="ttfs", weight_scaling=True),
        MethodSpec(coding="ttas", weight_scaling=True, target_duration=ttas_duration),
    ]
    return _run_table(
        datasets, methods, fault_kind, levels, scale, seed, workloads, eval_size,
        include_spikes=True, name=_FAULT_TABLE_NAMES[fault_kind],
        max_workers=max_workers, executor=executor, store=store,
        spike_backend=spike_backend, analog_backend=analog_backend,
        batch_size=batch_size, simulator=simulator, method_filter=method_filter,
        shards=shards,
    )


def table_adversarial(
    datasets: Sequence[str] = ("mnist",),
    attack_kind: str = "delete",
    budgets: Sequence[int] = BENCH_ATTACK_BUDGETS,
    scale: ExperimentScale = BENCH_SCALE,
    seed: int = 0,
    workloads: Optional[Dict[str, PreparedWorkload]] = None,
    eval_size: Optional[int] = None,
    max_workers: Optional[int] = None,
    ttas_duration: int = 5,
    executor: Union[str, Executor, None] = None,
    store: Union[ResultStore, str, None, bool] = None,
    spike_backend: Optional[str] = None,
    analog_backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    simulator: Optional[str] = None,
    method_filter: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
    search: str = "greedy",
    shift_delta: int = DEFAULT_SHIFT_DELTA,
    beam_width: int = 4,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> TableResult:
    """Worst-case robustness table: adversarial vs random, per coding.

    For every dataset and coding the table holds two rows -- the budgeted
    attacker's worst case (``search``, default greedy) and the
    matched-budget random baseline -- across the attack-budget columns
    (budget 0 is the "Clean" column).  ``simulator="timestep"`` transfer-
    evaluates the found attacks on the faithful simulator (codings without
    a temporal protocol are dropped by the config's validation there).
    The cells of all datasets and both searches dispatch as one flat batch.
    """
    del batch_size  # attack cells evaluate sample-by-sample
    from repro.coding.registry import timestep_support

    evaluator = simulator if simulator is not None else "transport"
    methods = [
        MethodSpec(coding="rate"),
        MethodSpec(coding="phase"),
        MethodSpec(coding="burst"),
        MethodSpec(coding="ttfs"),
        MethodSpec(coding="ttas", target_duration=ttas_duration),
    ]
    methods = filter_methods(methods, method_filter)
    if evaluator == "timestep":
        methods = [m for m in methods if timestep_support(m.coding)[0]]
        if not methods:
            raise ValueError(
                "no requested method supports timestep transfer evaluation"
            )
    configs = [
        AttackSweepConfig(
            dataset=dataset,
            methods=tuple(methods),
            attack_kind=attack_kind,
            budgets=tuple(int(b) for b in budgets),
            scale=scale,
            seed=seed,
            search=search_name,
            shift_delta=shift_delta,
            beam_width=beam_width,
            max_candidates=max_candidates,
            evaluator=evaluator,
            spike_backend=spike_backend,
            analog_backend=analog_backend,
        )
        for dataset in datasets
        for search_name in (search, "random")
    ]
    sweeps = run_attack_sweeps(
        configs,
        workloads=workloads,
        eval_size=eval_size,
        max_workers=max_workers,
        executor=executor,
        store=store,
        shards=shards,
    )
    rows: List[TableRow] = []
    # Pair each dataset's (search, random) sweeps and interleave per method.
    for pair_index in range(0, len(configs), 2):
        dataset = configs[pair_index].dataset
        worst, rand = sweeps[pair_index], sweeps[pair_index + 1]
        for worst_curve, rand_curve in zip(worst.curves, rand.curves):
            worst_row = _curve_to_row(dataset, worst_curve, include_spikes=True)
            worst_row.method = f"{worst_curve.label} ({search})"
            rand_row = _curve_to_row(dataset, rand_curve, include_spikes=True)
            rand_row.method = f"{rand_curve.label} (random)"
            rows.extend([worst_row, rand_row])
    return TableResult(
        name=f"Adversarial robustness (adv-{attack_kind}, {evaluator})",
        rows=rows,
        noise_kind=f"adv-{attack_kind}",
        levels=[float(b) for b in budgets],
    )
