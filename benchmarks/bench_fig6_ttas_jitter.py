"""Figure 6: TTFS vs TTAS(t_a) under spike jitter.

Paper setting: VGG16 on CIFAR-10, jitter sigma 0.5..4.0, TTFS compared with
TTAS for burst durations 1..5 and 10 (no weight scaling).  Reported shape:
TTAS overtakes TTFS as the burst duration grows, with diminishing returns.
"""

from benchmarks.conftest import EVAL_SIZE, SEED, emit_report, run_once
from repro.experiments import figure6_ttas_jitter, format_figure_series
from repro.metrics import area_under_accuracy_curve


def test_fig6_ttas_vs_ttfs_jitter(benchmark, workloads):
    """Regenerate the Fig. 6 series."""
    workload = workloads.get("cifar10")

    def run():
        return figure6_ttas_jitter(
            dataset="cifar10", workload=workload, seed=SEED, eval_size=EVAL_SIZE,
            ttas_durations=(1, 3, 5, 10),
        )

    result = run_once(benchmark, run)
    emit_report("fig6_ttas_jitter", format_figure_series(result, "Fig. 6 -- TTFS vs TTAS under jitter (CIFAR-10 stand-in)"))

    def auc(label):
        curve = result.curve(label)
        return area_under_accuracy_curve(curve.levels, curve.accuracies)

    # A long burst averages the jitter out: TTAS(10) must beat plain TTFS.
    assert auc("TTAS(10)") >= auc("TTFS")
    # And must not be worse than the shortest burst.
    assert auc("TTAS(10)") >= auc("TTAS(1)") - 0.02
