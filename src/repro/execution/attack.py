"""Adversarial attack plans: worst-case searches as resumable sweep cells.

An :class:`AttackPlan` describes one cell of a worst-case robustness sweep --
(workload, method, attack kind, budget, search driver, evaluator) -- as a
small frozen picklable value object, exactly like
:class:`~repro.execution.plan.EvaluationPlan` describes a random-noise cell.
The execution engine treats the two interchangeably (duck-typed dispatch in
:func:`~repro.execution.engine.execute_cell`), so attack sweeps inherit the
whole PR 3-8 machinery for free: serial/thread/process executors,
content-addressed :class:`~repro.execution.store.ResultStore` persistence
with resume, per-cell retries/timeouts and fault tolerance, and sample
sharding with completion-order persistence.

The determinism contract is stricter than a noise cell's: the attack search
for sample ``i`` derives every random choice statelessly from the plan
identity and the *absolute* sample index (:meth:`AttackPlan.search_root`),
and the candidate scorer derives its forward-pass streams from that root
plus its own deterministic call ordinal -- so the same plan produces
bit-identical perturbed trains on any executor, at any shard count, under
any worker configuration.

Sharding granularity is per *sample*, not per batch: each sample's search is
independent (there is no cross-sample batch noise stream to preserve), so a
cell of ``n`` samples splits into up to ``n`` shards.

The search always scores candidates on the fast transport evaluator; with
``evaluator="timestep"`` the found attacks are *transfer-evaluated* on the
faithful time-stepped simulator, measuring the transport->faithful attack
gap (the input train is the shared injection point of both evaluators).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.registry import create_coder
from repro.core.pipeline import SIMULATORS, EvaluationResult
from repro.core.timestep import build_time_stepped_simulator
from repro.core.transport import ActivationTransportSimulator
from repro.core.weight_scaling import WeightScaling
from repro.execution.plan import WorkloadRef, shard_fingerprint
from repro.noise.adversarial import (
    ATTACK_KINDS,
    ATTACK_SEARCHES,
    AttackOutcome,
    classification_margins,
    run_attack_search,
    stack_trains,
)
from repro.snn.simulator import resolve_sim_backend
from repro.snn.spikes import SpikeEvents
from repro.utils.rng import derive_rng, derive_rng_at, stream_root

if TYPE_CHECKING:  # pragma: no cover - cycle guard (experiments -> execution)
    from repro.experiments.config import AttackSweepConfig, MethodSpec
    from repro.experiments.workloads import PreparedWorkload

#: Version prefix baked into every attack-cell fingerprint; bump after any
#: semantic change to the search or evaluation path (independent of the
#: noise-cell schema -- the two cell families never alias).
ATTACK_FINGERPRINT_SCHEMA = 1


@dataclass(frozen=True)
class AttackPlan:
    """Everything needed to run one attack-sweep cell, by value.

    Attributes
    ----------
    workload:
        Reference to the trained network the cell attacks.
    method:
        Coding / weight-scaling configuration of the attacked curve.
    attack_kind:
        Perturbation space ("delete" / "shift" / "insert").
    budget:
        Maximum number of single-spike moves per sample (0 = clean).
    seed:
        Sweep seed; every search stream derives from it (see
        :meth:`search_root`).
    num_steps:
        Encoding window length ``T`` (resolved from the scale and coding).
    search:
        Attack driver ("greedy" / "beam" / "random").
    shift_delta / beam_width / max_candidates:
        Search-space knobs (see :mod:`repro.noise.adversarial`).
    evaluator:
        Where accuracy is measured: ``"transport"`` (same evaluator that
        scored the search) or ``"timestep"`` (transfer evaluation on the
        faithful simulator).
    eval_size:
        Number of attacked samples (``None`` = the scale's default).
    spike_backend / analog_backend:
        Backend overrides for the deeper (non-attacked) interfaces.  The
        attacked input train is always event-backed, independent of these.
    scaling_mode:
        Weight-scaling mode; attacks carry no deletion expectation, so the
        factor is always evaluated at ``expected_deletion=0``.
    sim_backend:
        Simulation engine of a timestep transfer evaluation, pinned at
        construction exactly like the noise plans' (``None`` and not
        ``evaluator="timestep"`` otherwise).
    sample_start / sample_stop:
        Sample-shard bounds over the cell's evaluation slice.  Unlike noise
        shards these need no batch alignment: every sample's search derives
        its streams from the sample's absolute index alone, so any
        contiguous split merges bit-identically.
    """

    workload: WorkloadRef
    method: "MethodSpec"
    attack_kind: str
    budget: int
    seed: int
    num_steps: int
    search: str = "greedy"
    shift_delta: int = 2
    beam_width: int = 4
    max_candidates: int = 64
    evaluator: str = "transport"
    eval_size: Optional[int] = None
    spike_backend: Optional[str] = None
    analog_backend: Optional[str] = None
    scaling_mode: str = "inverse"
    sim_backend: Optional[str] = None
    sample_start: Optional[int] = None
    sample_stop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attack_kind not in ATTACK_KINDS:
            raise ValueError(
                f"attack_kind must be one of {ATTACK_KINDS}, got "
                f"{self.attack_kind!r}"
            )
        if self.search not in ATTACK_SEARCHES:
            raise ValueError(
                f"search must be one of {ATTACK_SEARCHES}, got {self.search!r}"
            )
        if self.evaluator not in SIMULATORS:
            raise ValueError(
                f"evaluator must be one of {SIMULATORS}, got {self.evaluator!r}"
            )
        if int(self.budget) < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        object.__setattr__(self, "budget", int(self.budget))
        for knob in ("shift_delta", "beam_width", "max_candidates"):
            if int(getattr(self, knob)) < 1:
                raise ValueError(
                    f"{knob} must be >= 1, got {getattr(self, knob)}"
                )
        if self.evaluator == "timestep":
            resolved = resolve_sim_backend(self.sim_backend)
            object.__setattr__(self, "sim_backend", resolved)
        elif self.sim_backend is not None:
            raise ValueError(
                "sim_backend applies to timestep transfer evaluation only"
            )
        if (self.sample_start is None) != (self.sample_stop is None):
            raise ValueError(
                "sample_start and sample_stop must be set together "
                f"(got sample_start={self.sample_start!r}, "
                f"sample_stop={self.sample_stop!r})"
            )
        if self.sample_start is not None:
            start, stop = int(self.sample_start), int(self.sample_stop)
            total = self.effective_eval_size()
            if not 0 <= start < stop <= total:
                raise ValueError(
                    f"shard bounds [{start}, {stop}) must satisfy "
                    f"0 <= start < stop <= {total} (the cell's eval size)"
                )
            object.__setattr__(self, "sample_start", start)
            object.__setattr__(self, "sample_stop", stop)

    # -- identity (the engine's duck-typed cell surface) ---------------------------
    @property
    def dataset(self) -> str:
        return self.workload.dataset

    @property
    def method_label(self) -> str:
        return self.method.display_label()

    @property
    def noise_kind(self) -> str:
        """The sweep axis name rendered in logs, errors and reports."""
        return f"adv-{self.attack_kind}"

    @property
    def level(self) -> float:
        """The budget as the cell's position on the sweep axis."""
        return float(self.budget)

    def cell_id(self) -> str:
        """Human-readable cell identity used in logs and error messages."""
        label = (
            f"{self.dataset}/{self.method_label} "
            f"{self.noise_kind}={self.budget} [{self.search}/{self.evaluator}]"
        )
        if self.is_shard:
            label += f" samples[{self.sample_start}:{self.sample_stop})"
        return label

    # -- sample sharding -----------------------------------------------------------
    @property
    def is_shard(self) -> bool:
        return self.sample_start is not None

    def sample_range(self) -> Tuple[int, int]:
        if self.is_shard:
            return int(self.sample_start), int(self.sample_stop)
        return 0, self.effective_eval_size()

    def cell_plan(self) -> "AttackPlan":
        """The whole-cell plan this shard belongs to (self when unsharded)."""
        if not self.is_shard:
            return self
        return replace(self, sample_start=None, sample_stop=None)

    def shards(self, num_shards: int) -> List["AttackPlan"]:
        """Split this cell into at most ``num_shards`` contiguous shards.

        Per-sample granularity: attack streams are keyed by absolute sample
        indices, so -- unlike batch-aligned noise shards -- any contiguous
        split of the sample range merges bit-identically.
        """
        if self.is_shard:
            raise ValueError(f"cannot re-shard shard plan {self.cell_id()}")
        count = int(num_shards)
        if count < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        total = self.effective_eval_size()
        count = min(count, total)
        if count <= 1:
            return [self]
        base, extra = divmod(total, count)
        plans: List[AttackPlan] = []
        cursor = 0
        for index in range(count):
            take = base + (1 if index < extra else 0)
            plans.append(
                replace(self, sample_start=cursor, sample_stop=cursor + take)
            )
            cursor += take
        return plans

    def effective_eval_size(self) -> int:
        """Number of attacked samples (normalised against the test split)."""
        requested = (
            self.eval_size if self.eval_size is not None
            else self.workload.scale.eval_size
        )
        return int(min(requested, self.workload.scale.test_size))

    # -- RNG spec ------------------------------------------------------------------
    def encode_root(self) -> int:
        """Derivation root of the clean-train encode streams.

        Keyed by the seed and the *coder* identity only -- not the search --
        so the greedy curve and its matched-budget random baseline attack
        the exact same clean trains, even for stochastic encoders.
        """
        return stream_root(derive_rng(
            self.seed, "attack-encode", self.method.coding,
            str(self.method.target_duration), self.num_steps,
        ))

    def search_root(self) -> int:
        """Derivation root of every search/scoring stream of this cell.

        A pure function of the plan identity: per-sample streams derive from
        ``(search_root, tag, absolute sample index)``, which is what makes
        the found perturbation independent of executor, shard count and
        worker configuration.
        """
        return stream_root(derive_rng(
            self.seed, "attack", self.attack_kind, self.search,
            self.budget, self.method.coding,
            str(self.method.target_duration),
            int(bool(self.method.weight_scaling)),
        ))

    # -- fingerprinting ------------------------------------------------------------
    def describe(self) -> dict:
        """Canonical JSON-serialisable description of the attack cell.

        Mirrors :meth:`EvaluationPlan.describe`: shard bounds are excluded
        (shard identity enters through :func:`shard_fingerprint`), the
        workload collapses to its result-affecting triple, ``eval_size``
        normalises to its effective value, and the method's cosmetic
        ``label`` is cleared so relabelled curves share one stored result.
        The ``cell_kind`` marker plus a family-private schema keep attack
        cells from ever aliasing noise cells.
        """
        payload = asdict(self)
        del payload["sample_start"], payload["sample_stop"]
        payload["workload"] = {
            "dataset": self.workload.dataset,
            "scale": asdict(self.workload.scale),
            "seed": self.workload.seed,
        }
        payload["method"]["label"] = None
        payload["budget"] = int(self.budget)
        payload["eval_size"] = self.effective_eval_size()
        payload["cell_kind"] = "attack"
        payload["schema"] = ATTACK_FINGERPRINT_SCHEMA
        return payload

    def cell_fingerprint(self, network_hash: str) -> str:
        """Content address of the whole cell's result."""
        blob = json.dumps(
            {"plan": self.describe(), "network": network_hash},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def fingerprint(self, network_hash: str) -> str:
        """Content address of this plan's result (shard-derived if sharded)."""
        cell = self.cell_fingerprint(network_hash)
        if not self.is_shard:
            return cell
        start, stop = self.sample_range()
        return shard_fingerprint(cell, start, stop, self.effective_eval_size())

    # -- evaluation ----------------------------------------------------------------
    def evaluate_with_workload(
        self, workload: "PreparedWorkload"
    ) -> EvaluationResult:
        """Engine hook: evaluate this cell against its resolved workload."""
        return evaluate_attack_plan(self, workload)


class _AttackContext:
    """Per-cell live objects of one attack evaluation (built in the worker).

    Holds the coder, the transport scorer and -- for transfer evaluation --
    the faithful simulator, built once per cell and reused across the cell's
    samples.  Never crosses process boundaries; workers rebuild it from the
    (picklable) plan.
    """

    def __init__(self, plan: AttackPlan, workload: "PreparedWorkload"):
        self.plan = plan
        self.network = workload.network
        self.coder = create_coder(
            plan.method.coding, num_steps=plan.num_steps,
            **plan.method.coder_kwargs(),
        )
        self.scaling = (
            WeightScaling(mode=plan.scaling_mode)
            if plan.method.weight_scaling else WeightScaling.disabled()
        )
        #: Attacks carry no deletion expectation: the factor compensates at
        #: the clean operating point.
        self.factor = self.scaling.factor(0.0)
        self.scorer = ActivationTransportSimulator(
            network=self.network,
            coder=self.coder,
            noise=None,
            weight_scaling=self.scaling,
            expected_deletion=0.0,
            spike_backend=plan.spike_backend or "events",
            analog_backend=plan.analog_backend,
        )
        self.encode_root = plan.encode_root()
        self.search_root = plan.search_root()
        self.timestep = None
        self.spiking_layers: List[str] = []

    def build_timestep(self, sample_shape: Tuple[int, ...]) -> None:
        """Build the faithful simulator for transfer evaluation, once."""
        self.timestep = build_time_stepped_simulator(
            self.network,
            self.coder,
            batch_input_shape=(1,) + tuple(sample_shape),
            kernel_scale=self.factor,
            sim_backend=self.plan.sim_backend,
        )
        self.spiking_layers = [
            layer.name for layer in self.timestep.layers
            if layer.neuron is not None
        ]

    def clean_train(self, image: np.ndarray, absolute: int) -> SpikeEvents:
        """The sample's clean input train (event-backed, canonical)."""
        normalised = (
            np.asarray(image, dtype=np.float32) / self.network.input_scale
        )
        return self.coder.encode(
            normalised,
            rng=derive_rng_at(self.encode_root, "encode", absolute),
            backend="events",
        ).to_events()

    def margin_scorer(self, absolute: int, label: int):
        """Batched margin scorer for one sample's candidate trains.

        The forward-pass streams derive from ``(search_root, "score",
        absolute, call_index)``: keyed by the sample's absolute index so
        executors and shards agree, and by the call's ordinal so every
        scoring round draws a *fresh* realisation of any stochastic
        interface re-encoding.  The per-call key matters for stochastic
        coders: reusing one stream would freeze each batch slot's encoding
        noise across rounds, and an incumbent that drew a lucky slot would
        stall the greedy search.  The search drivers call the scorer in a
        deterministic sequence, so per-call keying preserves the
        bit-identical-across-executors contract.
        """
        calls = iter(range(1 << 62))

        def score(trains: Sequence[SpikeEvents]) -> np.ndarray:
            stacked = stack_trains(list(trains))
            logits, _ = self.scorer.forward(
                None,
                rng=derive_rng_at(
                    self.search_root, "score", absolute, next(calls)
                ),
                input_train=stacked,
            )
            return classification_margins(logits, label)

        return score

    def search(
        self, train: SpikeEvents, absolute: int, label: int
    ) -> AttackOutcome:
        """Run the plan's attack search on one sample's clean train."""
        return run_attack_search(
            train,
            self.plan.attack_kind,
            self.plan.search,
            self.plan.budget,
            self.margin_scorer(absolute, label),
            rng=derive_rng_at(self.search_root, "sample", absolute),
            shift_delta=self.plan.shift_delta,
            beam_width=self.plan.beam_width,
            max_candidates=self.plan.max_candidates,
        )

    def evaluate_train(
        self, train: SpikeEvents, absolute: int
    ) -> Tuple[int, int]:
        """Final (prediction, spike count) of one perturbed train.

        On transport this re-runs the scorer's forward with a dedicated
        stream; on timestep it runs the faithful membrane simulation --
        the transfer evaluation.  Spike counts include the (attacked) input
        train plus every deeper interface, matching the noise sweeps'
        accounting.
        """
        batched = stack_trains([train])
        if self.timestep is not None:
            record = self.timestep.run(batched)
            prediction = int(record.predictions[0])
            spikes = batched.total_spikes() + sum(
                int(record.spike_counts[name]) for name in self.spiking_layers
            )
            return prediction, spikes
        logits, spikes_per_interface = self.scorer.forward(
            None,
            rng=derive_rng_at(self.search_root, "final", absolute),
            input_train=batched,
        )
        prediction = int(np.argmax(logits[0]))
        return prediction, int(sum(spikes_per_interface.values()))


def find_attack_train(
    plan: AttackPlan, workload: "PreparedWorkload", sample_index: int
) -> AttackOutcome:
    """The perturbed train the plan's search finds for one absolute sample.

    A pure function of ``(plan cell, sample_index)`` -- shard bounds are
    ignored -- exposed so determinism tests (and notebooks) can compare the
    *trains* two configurations produce, not just their accuracies.
    """
    context = _AttackContext(plan.cell_plan(), workload)
    x, y = workload.evaluation_slice(plan.eval_size)
    absolute = int(sample_index)
    train = context.clean_train(x[absolute], absolute)
    return context.search(train, absolute, int(y[absolute]))


def evaluate_attack_plan(
    plan: AttackPlan, workload: "PreparedWorkload"
) -> EvaluationResult:
    """Run one attack cell (or shard), purely.

    For every sample in the plan's range: encode the clean train, search for
    the worst perturbation within budget, then measure the perturbed train
    on the plan's evaluator.  Returns a standard
    :class:`~repro.core.pipeline.EvaluationResult` (deletion/jitter are 0 --
    the budget identity lives in the plan and its fingerprint), so attack
    cells persist, resume and shard-merge through exactly the machinery the
    noise cells use.
    """
    context = _AttackContext(plan, workload)
    x, y = workload.evaluation_slice(plan.eval_size)
    start, stop = plan.sample_range()
    x, y = x[start:stop], y[start:stop]
    if plan.evaluator == "timestep" and x.shape[0]:
        context.build_timestep(x.shape[1:])

    correct = 0
    total_spikes = 0
    for offset in range(int(x.shape[0])):
        absolute = start + offset
        label = int(y[offset])
        clean = context.clean_train(x[offset], absolute)
        outcome = context.search(clean, absolute, label)
        prediction, spikes = context.evaluate_train(outcome.train, absolute)
        correct += int(prediction == label)
        total_spikes += spikes

    num_samples = int(x.shape[0])
    return EvaluationResult(
        accuracy=correct / num_samples if num_samples else float("nan"),
        total_spikes=int(total_spikes),
        spikes_per_sample=(
            total_spikes / num_samples if num_samples else float("nan")
        ),
        coding=plan.method.coding,
        deletion=0.0,
        jitter=0.0,
        weight_scaling_factor=context.factor,
        num_samples=num_samples,
    )


def build_attack_plans(
    config: "AttackSweepConfig",
    eval_size: Optional[int] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> List[AttackPlan]:
    """Compile an attack sweep config into its (method x budget) cell plans.

    Cells are ordered method-major, matching the curve assembly the noise
    sweeps use -- which is what lets the runner fold attack results with the
    same code path.
    """
    ref = WorkloadRef.from_sweep_config(
        config, use_cache=use_cache, cache_dir=cache_dir
    )
    return [
        AttackPlan(
            workload=ref,
            method=method,
            attack_kind=config.attack_kind,
            budget=int(budget),
            seed=config.seed,
            num_steps=config.scale.time_steps_for(method.coding),
            search=config.search,
            shift_delta=config.shift_delta,
            beam_width=config.beam_width,
            max_candidates=config.max_candidates,
            evaluator=config.evaluator,
            eval_size=eval_size,
            spike_backend=config.spike_backend,
            analog_backend=config.analog_backend,
        )
        for method in config.methods
        for budget in config.budgets
    ]
