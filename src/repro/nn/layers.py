"""Core neural-network layers with explicit forward/backward passes.

Every layer follows the same contract:

* ``forward(x, training=False)`` caches whatever the backward pass needs and
  returns the layer output,
* ``backward(grad_output)`` returns the gradient with respect to the layer
  input and fills ``layer.grads`` for parameters,
* ``params`` / ``grads`` are dictionaries keyed by parameter name.

The convolution uses an im2col formulation: patches are unfolded into a
matrix so the convolution becomes a single matrix multiplication, which is
the only way to get acceptable throughput from pure numpy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.utils.rng import RngLike, default_rng
from repro.utils.validation import check_positive, check_probability


class Layer:
    """Base class for all layers."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------
    @property
    def has_params(self) -> bool:
        """True when the layer owns trainable parameters."""
        return bool(self.params)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class Identity(Layer):
    """Pass-through layer, useful as a placeholder in model surgery."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features / out_features:
        Input and output dimensionality.
    use_bias:
        Include an additive bias term (default True).
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.params["weight"] = he_normal((self.in_features, self.out_features), rng)
        if self.use_bias:
            self.params["bias"] = zeros_init((self.out_features,))
        self.zero_grads()
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), "
                f"got {x.shape}"
            )
        self._cache_x = x if training else None
        out = x @ self.params["weight"]
        if self.use_bias:
            out = out + self.params["bias"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        x = self._cache_x
        self.grads["weight"] = x.T @ grad_output
        if self.use_bias:
            self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T


class ReLU(Layer):
    """Rectified linear unit.  The only activation used by the conversion path."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        return grad_output * self._mask


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout.

    During training each unit is zeroed with probability ``p`` and survivors
    are scaled by ``1/(1-p)``; at inference the layer is the identity.  The
    paper points out that dropout during DNN training is what makes TTFS
    coding tolerate all-or-none activation loss, so this layer matters for
    reproducing Fig. 2.
    """

    def __init__(self, p: float = 0.5, rng: RngLike = None, name: Optional[str] = None):
        super().__init__(name=name)
        check_probability("p", p)
        if p >= 1.0:
            raise ValueError("dropout probability must be < 1")
        self.p = float(p)
        self._rng = default_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


# ---------------------------------------------------------------------------
# Convolution / pooling (im2col formulation)
# ---------------------------------------------------------------------------

def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold image patches into a 2-D matrix.

    Returns ``(columns, out_h, out_w)`` where ``columns`` has shape
    ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel_h}x{kernel_w} with stride {stride} and padding "
            f"{padding} does not fit input of spatial size {h}x{w}"
        )
    img = np.pad(
        x, [(0, 0), (0, 0), (padding, padding), (padding, padding)], mode="constant"
    )
    col = np.zeros((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            col[:, :, ky, kx, :, :] = img[:, :, ky:y_max:stride, kx:x_max:stride]
    columns = col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return columns, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: fold columns back into an image tensor."""
    n, c, h, w = input_shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    col = columns.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    img = np.zeros(
        (n, c, h + 2 * padding + stride - 1, w + 2 * padding + stride - 1),
        dtype=columns.dtype,
    )
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]
    return img[:, :, padding:h + padding, padding:w + padding]


class Conv2D(Layer):
    """2-D convolution (cross-correlation) over ``(N, C, H, W)`` inputs.

    Parameters
    ----------
    in_channels / out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Standard convolution hyper-parameters.
    use_bias:
        Include a per-output-channel bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        use_bias: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        check_positive("kernel_size", kernel_size)
        check_positive("stride", stride)
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        weight_shape = (
            self.out_channels, self.in_channels, self.kernel_size, self.kernel_size
        )
        self.params["weight"] = he_normal(weight_shape, rng)
        if self.use_bias:
            self.params["bias"] = zeros_init((self.out_channels,))
        self.zero_grads()
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Spatial output shape for a single-image input shape ``(C, H, W)``."""
        _, h, w = input_shape
        out_h = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        columns, out_h, out_w = im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        out = columns @ weight_matrix.T
        if self.use_bias:
            out = out + self.params["bias"]
        out = out.reshape(x.shape[0], out_h, out_w, self.out_channels)
        out = out.transpose(0, 3, 1, 2)
        self._cache = (columns, x.shape) if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        columns, input_shape = self._cache
        n, _, out_h, out_w = grad_output.shape
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] = (grad_matrix.T @ columns).reshape(
            self.params["weight"].shape
        )
        if self.use_bias:
            self.grads["bias"] = grad_matrix.sum(axis=0)
        grad_columns = grad_matrix @ weight_matrix
        return col2im(
            grad_columns, input_shape, self.kernel_size, self.kernel_size,
            self.stride, self.padding,
        )


class _Pool2D(Layer):
    """Shared plumbing for max and average pooling."""

    def __init__(
        self,
        pool_size: int = 2,
        stride: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        check_positive("pool_size", pool_size)
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        check_positive("stride", self.stride)
        self._cache: Optional[Tuple] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Spatial output shape for a single-image input shape ``(C, H, W)``."""
        c, h, w = input_shape
        out_h = (h - self.pool_size) // self.stride + 1
        out_w = (w - self.pool_size) // self.stride + 1
        return (c, out_h, out_w)

    def _unfold(self, x: np.ndarray) -> Tuple[np.ndarray, int, int]:
        n, c, h, w = x.shape
        out_h = (h - self.pool_size) // self.stride + 1
        out_w = (w - self.pool_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"{self.name}: pool size {self.pool_size} does not fit input {h}x{w}"
            )
        columns, _, _ = im2col(x, self.pool_size, self.pool_size, self.stride, 0)
        # columns: (N*out_h*out_w, C*k*k) -> (N*out_h*out_w, C, k*k)
        columns = columns.reshape(-1, c, self.pool_size * self.pool_size)
        return columns, out_h, out_w


class MaxPool2D(_Pool2D):
    """Max pooling.  Used by standard VGG; note that DNN-to-SNN conversion
    pipelines usually prefer average pooling (see :func:`repro.nn.vgg.build_vgg`)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        columns, out_h, out_w = self._unfold(x)
        # columns: (N*out_h*out_w, C, k*k)
        max_idx = columns.argmax(axis=2)
        out = columns.max(axis=2)
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        self._cache = (max_idx, x.shape, out_h, out_w) if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        max_idx, input_shape, out_h, out_w = self._cache
        n, c, _, _ = input_shape
        k2 = self.pool_size * self.pool_size
        grad = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.zeros((grad.shape[0], c, k2), dtype=grad_output.dtype)
        rows = np.arange(grad.shape[0])[:, None]
        cols = np.arange(c)[None, :]
        grad_cols[rows, cols, max_idx] = grad
        grad_cols = grad_cols.reshape(grad.shape[0], c * k2)
        return col2im(
            grad_cols, input_shape, self.pool_size, self.pool_size, self.stride, 0
        )


class AvgPool2D(_Pool2D):
    """Average pooling -- the pooling used by the conversion-friendly VGG variants."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        columns, out_h, out_w = self._unfold(x)
        out = columns.mean(axis=2)
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        self._cache = (x.shape, out_h, out_w) if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        input_shape, out_h, out_w = self._cache
        n, c, _, _ = input_shape
        k2 = self.pool_size * self.pool_size
        grad = grad_output.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_cols = np.repeat(grad[:, :, None] / k2, k2, axis=2)
        grad_cols = grad_cols.reshape(grad.shape[0], c * k2)
        return col2im(
            grad_cols, input_shape, self.pool_size, self.pool_size, self.stride, 0
        )
