"""Noise-model interface."""

from __future__ import annotations

from typing import Optional

from repro.snn.spikes import SpikeTrainArray
from repro.utils.rng import RngLike, default_rng


class SpikeNoise:
    """Base class of spike-train noise models.

    A noise model is a stochastic transform of a :class:`SpikeTrainArray`.
    Implementations must not mutate the input train.
    """

    #: Registry-style name used in experiment configs and reports.
    name: str = "noise"

    def apply(self, train: SpikeTrainArray, rng: RngLike = None) -> SpikeTrainArray:
        """Return a noisy copy of ``train``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description used in table/figure captions."""
        return self.name

    def __call__(self, train: SpikeTrainArray, rng: RngLike = None) -> SpikeTrainArray:
        return self.apply(train, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class IdentityNoise(SpikeNoise):
    """The no-noise baseline ("Clean" rows of the paper's tables)."""

    name = "clean"

    def apply(self, train: SpikeTrainArray, rng: RngLike = None) -> SpikeTrainArray:
        return train.copy()

    def describe(self) -> str:
        return "clean"
