"""Batch normalisation.

Only the 2-D (per-channel) variant used inside convolutional stacks is
implemented.  At conversion time the affine transform and the running
statistics are folded into the preceding convolution's weights and biases
(see :func:`repro.conversion.normalization.fold_batch_norm`), so the SNN never
sees a separate normalisation step -- exactly as DNN-to-SNN conversion
pipelines do in practice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Layer
from repro.utils.validation import check_positive


class BatchNorm2D(Layer):
    """Per-channel batch normalisation over ``(N, C, H, W)`` tensors.

    Parameters
    ----------
    num_features:
        Number of channels ``C``.
    momentum:
        Running-statistics momentum (new = (1-m)*old + m*batch).
    eps:
        Numerical stabiliser added to the variance.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        check_positive("num_features", num_features)
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must lie in (0, 1], got {momentum}")
        check_positive("eps", eps)
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.params["gamma"] = np.ones(self.num_features, dtype=np.float32)
        self.params["beta"] = np.zeros(self.num_features, dtype=np.float32)
        self.running_mean = np.zeros(self.num_features, dtype=np.float32)
        self.running_var = np.ones(self.num_features, dtype=np.float32)
        self.zero_grads()
        self._cache = None

    def _reshape(self, v: np.ndarray) -> np.ndarray:
        return v.reshape(1, self.num_features, 1, 1)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean)) * self._reshape(inv_std)
        out = self._reshape(self.params["gamma"]) * x_hat + self._reshape(
            self.params["beta"]
        )
        if training:
            self._cache = (x_hat, inv_std)
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        x_hat, inv_std = self._cache
        n, _, h, w = grad_output.shape
        m = n * h * w
        self.grads["gamma"] = (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"] = grad_output.sum(axis=(0, 2, 3))
        gamma = self._reshape(self.params["gamma"])
        grad_xhat = grad_output * gamma
        sum_grad_xhat = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (
            grad_xhat - sum_grad_xhat / m - x_hat * sum_grad_xhat_xhat / m
        ) * self._reshape(inv_std)
        return grad_input
