"""Utility helpers shared across the reproduction.

The :mod:`repro.utils` package bundles small, dependency-free helpers:

* :mod:`repro.utils.rng` -- deterministic random-number-generator management,
* :mod:`repro.utils.logging` -- lightweight structured logging,
* :mod:`repro.utils.config` -- configuration dataclasses and validation,
* :mod:`repro.utils.serialization` -- saving/loading trained models,
* :mod:`repro.utils.validation` -- argument validation helpers.
"""

from repro.utils.rng import (
    RngRegistry,
    default_rng,
    derive_rng,
    set_global_seed,
    spawn_rngs,
)
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.config import ConfigError, freeze_dict, validate_choice
from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
)
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_shape,
    check_non_negative,
)

__all__ = [
    "RngRegistry",
    "default_rng",
    "derive_rng",
    "set_global_seed",
    "spawn_rngs",
    "get_logger",
    "set_verbosity",
    "ConfigError",
    "freeze_dict",
    "validate_choice",
    "load_arrays",
    "load_json",
    "save_arrays",
    "save_json",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_non_negative",
]
