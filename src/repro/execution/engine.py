"""The plan-evaluation engine: executors x result store x workload registry.

:func:`evaluate_plans` is the single entry point every sweep (figures,
tables, benchmarks, CLI) funnels through.  Given a list of
:class:`~repro.execution.plan.EvaluationPlan` cells it

1. resolves each plan's workload (preparing and memoising it per process),
2. computes the plan fingerprints and serves store hits without evaluating,
3. optionally splits each pending cell into batch-aligned **sample shards**
   (explicit ``shards=`` / ``$REPRO_SWEEP_SHARDS``, or automatically when a
   dispatch has fewer cells than pool workers), so a single cell can use
   the whole pool,
4. fans the resulting work items out over the selected executor backend,
5. persists each freshly evaluated cell -- and each shard of a sharded
   cell -- to the store *as it completes*, so an interrupted run resumes
   from the cells (and shards) already done,
6. merges shard results back into whole-cell results (bit-identical to the
   unsharded evaluation; see :mod:`repro.execution.plan`) and returns them
   in plan order together with execution statistics.

Worker processes do not share the parent's memory (unless forked): the
module-level :func:`execute_cell` rebuilds workloads from the plans'
workload references on first use and memoises them per process, so a
process evaluating many cells of one dataset prepares it once.  On
fork-based platforms (Linux) children inherit the registry as it stood when
their (possibly warm, reused) pool first started and skip even that for
workloads already known then.
"""

from __future__ import annotations

import math
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import EvaluationResult
from repro.execution.executors import Executor, resolve_executor
from repro.execution.plan import (
    EvaluationPlan,
    WorkloadRef,
    evaluate_plan,
    merge_shard_results,
    network_fingerprint,
    shard_fingerprint,
)
from repro.execution.store import ResultStore, resolve_store
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - cycle guard (experiments -> execution)
    from repro.experiments.workloads import PreparedWorkload

logger = get_logger("execution.engine")

#: Per-process registry of prepared workloads, keyed by workload reference.
#: Seeded by the parent before dispatch; inherited by forked workers; filled
#: on demand (from the on-disk weight cache, or by retraining -- both
#: deterministic) everywhere else.  Bounded: long-lived sessions sweeping
#: many (dataset, scale, seed) combinations evict the oldest entries instead
#: of growing without limit (re-preparation is deterministic and cached on
#: disk, so eviction only costs time, never correctness).
_WORKLOAD_REGISTRY: Dict[WorkloadRef, "PreparedWorkload"] = {}

#: Maximum workloads kept in the per-process registry.
WORKLOAD_REGISTRY_LIMIT = 8

#: Workloads of the batch currently inside :func:`evaluate_plans`.  Unlike
#: the bounded registry this mapping is exact for the batch's lifetime, so a
#: batch spanning more than ``WORKLOAD_REGISTRY_LIMIT`` distinct workloads
#: never evicts-and-re-prepares its own members.  Process workers forked
#: when a pool first starts inherit the mapping as populated at that
#: moment; workers of a *warm* pool serving a later batch (or spawn-started
#: workers) do not see entries pinned afterwards and fall back to
#: :func:`workload_for`, which rebuilds deterministically from the
#: reference (served from the trained-weight cache) and memoises per
#: process -- slower on first touch, never different.
_BATCH_WORKLOADS: Dict[WorkloadRef, "PreparedWorkload"] = {}

#: Cached network fingerprints, keyed by workload reference (hashing the
#: trained weights is cheap but not free; once per workload is enough).
_NETWORK_HASHES: Dict[WorkloadRef, str] = {}

#: Guards the registry/hash caches: thread-executor workers resolve
#: workloads concurrently, and preparation must happen at most once per
#: reference (an RLock because register_workload runs inside workload_for).
_REGISTRY_LOCK = threading.RLock()


class CellEvaluationError(RuntimeError):
    """A sweep cell failed; carries the cell identity across workers.

    A bare exception surfacing out of a worker pool gives no clue *which*
    (dataset, method, level) cell died.  This wrapper names the cell, the
    original error, the formatted remote traceback (``remote_traceback``,
    captured where the cell actually ran) and how many attempts were made --
    and, because it reconstructs from positional ``args``, survives pickling
    across process boundaries intact.
    """

    def __init__(self, dataset: str, method: str, noise_kind: str,
                 level: float, cause: str, remote_traceback: str = "",
                 attempts: int = 1):
        super().__init__(dataset, method, noise_kind, level, cause,
                         remote_traceback, attempts)
        self.dataset = dataset
        self.method = method
        self.noise_kind = noise_kind
        self.level = level
        self.cause = cause
        self.remote_traceback = remote_traceback
        self.attempts = attempts

    def __str__(self) -> str:
        suffix = f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        return (
            f"sweep cell {self.dataset}/{self.method} "
            f"{self.noise_kind}={self.level:g} failed: {self.cause}{suffix}"
        )


@dataclass(frozen=True)
class CellFailure:
    """A cell that exhausted its retry budget, recorded instead of raised.

    Under fault-tolerant execution a failed cell degrades the sweep instead
    of aborting it: the failure takes the cell's slot in
    :attr:`PlanEvaluation.results` and downstream assembly renders it as an
    explicit hole (NaN accuracy).  Plain data, hence trivially picklable on
    the way back from a worker.
    """

    dataset: str
    method: str
    noise_kind: str
    level: float
    message: str
    remote_traceback: str = ""
    attempts: int = 1

    def to_error(self) -> CellEvaluationError:
        """Reconstruct the exception this failure swallowed."""
        return CellEvaluationError(
            self.dataset, self.method, self.noise_kind, self.level,
            self.message, self.remote_traceback, self.attempts,
        )


@dataclass
class ExecutionStats:
    """What one :func:`evaluate_plans` call actually did.

    ``evaluated_cells`` and ``store_hits`` stay cell-granular regardless of
    sharding: a cell assembled from freshly evaluated shards counts as one
    evaluated cell, a cell merged entirely from stored shard documents
    counts as one store hit.  The shard-level traffic is reported
    separately (``sharded_cells``, ``evaluated_shards``,
    ``shard_store_hits``).
    """

    executor: str
    total_cells: int = 0
    evaluated_cells: int = 0
    store_hits: int = 0
    store_writes: int = 0
    failed_cells: int = 0
    sharded_cells: int = 0
    evaluated_shards: int = 0
    shard_store_hits: int = 0

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "executor": self.executor,
            "total_cells": self.total_cells,
            "evaluated_cells": self.evaluated_cells,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "failed_cells": self.failed_cells,
            "sharded_cells": self.sharded_cells,
            "evaluated_shards": self.evaluated_shards,
            "shard_store_hits": self.shard_store_hits,
        }


@dataclass
class PlanEvaluation:
    """Results of a batch of plans, in plan order, plus statistics.

    Under fault-tolerant execution a slot may hold a :class:`CellFailure`
    instead of an :class:`~repro.core.pipeline.EvaluationResult`; use
    :attr:`failures` to enumerate them.
    """

    results: List[Union[EvaluationResult, CellFailure]]
    stats: ExecutionStats = field(default_factory=lambda: ExecutionStats("serial"))

    @property
    def failures(self) -> List[Tuple[int, CellFailure]]:
        """The failed cells, as (plan index, failure) pairs."""
        return [
            (index, result)
            for index, result in enumerate(self.results)
            if isinstance(result, CellFailure)
        ]


def register_workload(ref: WorkloadRef, workload: "PreparedWorkload") -> None:
    """Seed the process-local registry with an already prepared workload.

    Re-registering an existing reference refreshes its recency; when the
    registry is full the least recently registered workload is evicted.
    """
    with _REGISTRY_LOCK:
        _WORKLOAD_REGISTRY.pop(ref, None)
        _WORKLOAD_REGISTRY[ref] = workload
        _NETWORK_HASHES.pop(ref, None)
        while len(_WORKLOAD_REGISTRY) > WORKLOAD_REGISTRY_LIMIT:
            evicted = next(iter(_WORKLOAD_REGISTRY))
            del _WORKLOAD_REGISTRY[evicted]
            _NETWORK_HASHES.pop(evicted, None)


def workload_for(ref: WorkloadRef) -> "PreparedWorkload":
    """Resolve a workload reference, preparing and memoising on first use."""
    # Imported here, not at module scope: repro.experiments is built on top
    # of this engine, so the dependency must stay one-way at import time.
    from repro.experiments.workloads import prepare_workload

    workload = _BATCH_WORKLOADS.get(ref)
    if workload is not None:
        return workload
    with _REGISTRY_LOCK:
        # Double-checked under the lock: concurrent thread workers must
        # prepare a missing workload exactly once, not once per thread.
        workload = _WORKLOAD_REGISTRY.get(ref)
        if workload is None:
            logger.info(
                "preparing workload %s/%s (seed %d) in process",
                ref.dataset, ref.scale.name, ref.seed,
            )
            workload = prepare_workload(
                ref.dataset,
                scale=ref.scale,
                seed=ref.seed,
                cache_dir=ref.cache_dir,
                use_cache=ref.use_cache,
            )
            register_workload(ref, workload)
    return workload


def network_hash_for(ref: WorkloadRef) -> str:
    """Fingerprint of the converted network behind a workload reference."""
    with _REGISTRY_LOCK:
        cached = _NETWORK_HASHES.get(ref)
        if cached is None:
            cached = network_fingerprint(workload_for(ref))
            _NETWORK_HASHES[ref] = cached
            while len(_NETWORK_HASHES) > 4 * WORKLOAD_REGISTRY_LIMIT:
                del _NETWORK_HASHES[next(iter(_NETWORK_HASHES))]
    return cached


def execute_cell(plan: EvaluationPlan) -> EvaluationResult:
    """Evaluate one plan in the current process (the executor work item).

    Module-level (hence picklable by reference) so the process backend can
    ship it; failures are re-raised as :class:`CellEvaluationError` carrying
    the cell identity, which survives the trip back through the pool.

    Dispatch is duck-typed: a plan that knows how to evaluate itself (e.g.
    an :class:`~repro.execution.attack.AttackPlan` exposing
    ``evaluate_with_workload``) is asked to; everything else is a standard
    sweep cell handled by :func:`~repro.execution.plan.evaluate_plan`.  This
    keeps the engine -- executors, store, retries, timeouts, sharding --
    entirely agnostic of what a cell computes.
    """
    try:
        workload = workload_for(plan.workload)
        evaluate = getattr(plan, "evaluate_with_workload", None)
        if evaluate is not None:
            result = evaluate(workload)
        else:
            result = evaluate_plan(plan, workload)
    except CellEvaluationError:
        raise
    except Exception as error:
        raise CellEvaluationError(
            plan.dataset, plan.method_label, plan.noise_kind, float(plan.level),
            f"{type(error).__name__}: {error}", traceback.format_exc(),
        ) from error
    logger.info(
        "%s | %s %s=%.2f -> acc=%.3f spikes/sample=%.0f",
        plan.dataset, plan.method_label, plan.noise_kind, plan.level,
        result.accuracy, result.spikes_per_sample,
    )
    return result


#: Environment variable: per-cell retry budget under fault-tolerant
#: execution (0 = disabled, the default -- errors propagate like before).
CELL_RETRIES_ENV = "REPRO_CELL_RETRIES"

#: Environment variable: per-cell timeout in seconds (unset/<= 0 = no
#: timeout).
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: First retry delay in seconds; doubles per attempt up to the cap.
RETRY_BACKOFF_BASE = 0.1
RETRY_BACKOFF_CAP = 5.0


def resolve_cell_retries(retries: Optional[int] = None) -> int:
    """Resolve the per-cell retry budget (argument > env > 0)."""
    if retries is None:
        env = os.environ.get(CELL_RETRIES_ENV, "").strip()
        try:
            retries = int(env) if env else 0
        except ValueError:
            raise ValueError(
                f"{CELL_RETRIES_ENV} must be an integer, got {env!r}"
            ) from None
    return max(int(retries), 0)


def resolve_cell_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Resolve the per-cell timeout in seconds (argument > env > off)."""
    if timeout is None:
        env = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        try:
            timeout = float(env) if env else None
        except ValueError:
            raise ValueError(
                f"{CELL_TIMEOUT_ENV} must be a number of seconds, got {env!r}"
            ) from None
    if timeout is None or timeout <= 0:
        return None
    return float(timeout)


def _run_cell_with_timeout(
    plan: EvaluationPlan, timeout: Optional[float]
) -> EvaluationResult:
    """Run one cell, bounding its wall-clock time.

    The evaluation runs on a daemon thread: numpy has no safe preemption
    point, so on timeout the computation is *abandoned*, not cancelled --
    its thread keeps running to completion in the background while the
    worker moves on.  The timeout therefore bounds how long a hung cell can
    stall the sweep, not the worker's total CPU use.
    """
    if timeout is None:
        return execute_cell(plan)
    outcome: Dict[str, object] = {}

    def _target() -> None:
        try:
            outcome["result"] = execute_cell(plan)
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            outcome["error"] = error

    worker = threading.Thread(
        target=_target, name=f"repro-cell-{plan.cell_id()}", daemon=True
    )
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise CellEvaluationError(
            plan.dataset, plan.method_label, plan.noise_kind, float(plan.level),
            f"timed out after {timeout:g}s (computation abandoned)",
        )
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["result"]  # type: ignore[return-value]


def evaluate_cell_tolerant(
    plan: EvaluationPlan,
    retries: int = 0,
    timeout: Optional[float] = None,
    backoff: float = RETRY_BACKOFF_BASE,
) -> Union[EvaluationResult, CellFailure]:
    """Fault-tolerant work item: retry with capped exponential backoff.

    Transient failures (and timeouts) are retried up to ``retries`` times;
    a cell that exhausts the budget returns a :class:`CellFailure` instead
    of raising, so one bad cell degrades the sweep to an explicit hole
    rather than aborting the whole run.  Module-level and configured via
    :func:`functools.partial`, hence picklable for the process backend.
    """
    attempts = max(int(retries), 0) + 1
    delay = float(backoff)
    last: Optional[CellEvaluationError] = None
    for attempt in range(1, attempts + 1):
        try:
            return _run_cell_with_timeout(plan, timeout)
        except CellEvaluationError as error:
            last = error
            if attempt < attempts:
                sleep = min(delay, RETRY_BACKOFF_CAP)
                logger.warning(
                    "cell %s failed (attempt %d/%d), retrying in %.2gs: %s",
                    plan.cell_id(), attempt, attempts, sleep, error.cause,
                )
                time.sleep(sleep)
                delay *= 2
    return CellFailure(
        dataset=last.dataset,
        method=last.method,
        noise_kind=last.noise_kind,
        level=last.level,
        message=last.cause,
        remote_traceback=last.remote_traceback,
        attempts=attempts,
    )


#: Environment variable: sample shards per cell (unset = automatic; 1 =
#: sharding off; >= 2 = split every pending cell into that many shards).
SWEEP_SHARDS_ENV = "REPRO_SWEEP_SHARDS"


def resolve_sweep_shards(shards: Optional[int] = None) -> Optional[int]:
    """Resolve the shards-per-cell setting (argument > env > auto).

    ``None`` means *automatic*: :func:`evaluate_plans` shards only when a
    dispatch would otherwise leave pool workers idle (fewer pending cells
    than workers).  An explicit count applies to every pending cell --
    ``1`` forces sharding off.
    """
    if shards is None:
        env = os.environ.get(SWEEP_SHARDS_ENV, "").strip()
        if not env:
            return None
        try:
            shards = int(env)
        except ValueError:
            raise ValueError(
                f"{SWEEP_SHARDS_ENV} must be an integer, got {env!r}"
            ) from None
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return shards


def _auto_shard_count(backend: Executor, pending: int) -> int:
    """Pick a shards-per-cell count for a dispatch, when not set explicitly.

    Sharding pays off exactly when the dispatch cannot fill the pool:
    ``pending`` cells on ``workers`` workers leaves ``workers - pending``
    of them idle, so each cell is split into ``ceil(workers / pending)``
    sample shards.  Off (1) on the serial backend, on one-worker pools,
    and whenever there are at least as many cells as workers.
    """
    workers = int(getattr(backend, "max_workers", 1) or 1)
    if backend.name == "serial" or workers <= 1 or pending <= 0 or pending >= workers:
        return 1
    count = math.ceil(workers / pending)
    logger.info(
        "auto-shard: %d pending cell(s) on %d %s worker(s) -> "
        "%d sample shard(s) per cell",
        pending, workers, backend.name, count,
    )
    return count


@dataclass
class _ShardedCell:
    """In-flight bookkeeping of one cell split into sample shards."""

    plans: List[EvaluationPlan]
    results: List[Optional[EvaluationResult]]
    cell_fingerprint: Optional[str] = None
    fingerprints: Optional[List[str]] = None
    failed: bool = False

    def completed(self) -> bool:
        return all(result is not None for result in self.results)


def evaluate_plans(
    plans: Sequence[EvaluationPlan],
    executor: Union[str, Executor, None] = None,
    max_workers: Optional[int] = None,
    store: Union[ResultStore, str, None, bool] = None,
    workloads: Optional[Dict[WorkloadRef, "PreparedWorkload"]] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    retry_backoff: float = RETRY_BACKOFF_BASE,
    shards: Optional[int] = None,
) -> PlanEvaluation:
    """Evaluate a batch of plans through the executor + store machinery.

    Parameters
    ----------
    plans:
        The cells to evaluate; results come back in the same order.
    executor:
        Executor instance, backend name, or ``None`` for the
        ``REPRO_SWEEP_EXECUTOR`` / ``max_workers`` defaults (see
        :func:`repro.execution.executors.resolve_executor`).
    max_workers:
        Worker count for the pooled backends.
    store:
        Result store (instance, directory path, ``None`` = honour
        ``$REPRO_RESULT_STORE``, ``False`` = force off).  Cells whose
        fingerprint is already stored are served from disk without being
        evaluated; fresh results are persisted as they complete.
    workloads:
        Already prepared workloads for (some of) the plans' references,
        pinned for the duration of this call -- exact regardless of the
        bounded registry, so arbitrarily large batches never re-prepare
        workloads the caller is still holding.
    retries / cell_timeout:
        Fault-tolerance knobs (``None`` = honour ``REPRO_CELL_RETRIES`` /
        ``REPRO_CELL_TIMEOUT``).  With both off -- the default -- cell
        errors propagate exactly as before.  With either on, failing cells
        are retried with capped exponential backoff and a cell exhausting
        the budget comes back as a :class:`CellFailure` slot (counted in
        ``stats.failed_cells``) instead of aborting the batch.
    retry_backoff:
        First retry delay in seconds (doubles per attempt; tests shrink it).
    shards:
        Sample shards per pending cell (``None`` = honour
        ``$REPRO_SWEEP_SHARDS``, falling back to the automatic heuristic:
        shard only when a pooled dispatch has fewer cells than workers).
        Sharded cells evaluate their batch-aligned sample ranges as
        independent work items -- per-batch noise streams are keyed by
        absolute sample offsets, so the merged result is bit-identical to
        the unsharded evaluation at any shard count and on any executor.
        With a store, each shard is persisted as it completes and an
        interrupted run resumes at shard granularity; once a cell merges,
        its shard documents are garbage-collected.  Fault tolerance
        degrades per shard: a shard exhausting its retry budget records a
        hole for its whole cell, but sibling shards that finished are still
        persisted for resume.
    """
    plans = list(plans)
    retries = resolve_cell_retries(retries)
    cell_timeout = resolve_cell_timeout(cell_timeout)
    shards = resolve_sweep_shards(shards)
    fault_tolerant = retries > 0 or cell_timeout is not None
    backend = resolve_executor(executor, max_workers)
    # Close a backend resolved here (the caller cannot reuse it); leave a
    # caller-provided instance warm for its next dispatch.
    owns_backend = not isinstance(executor, Executor)
    result_store = resolve_store(store)
    stats = ExecutionStats(executor=backend.name, total_cells=len(plans))
    results: List[Optional[EvaluationResult]] = [None] * len(plans)

    pinned = dict(workloads or {})
    _BATCH_WORKLOADS.update(pinned)
    try:
        pending: List[int] = []
        fingerprints: Dict[int, str] = {}
        if result_store is not None:
            for index, plan in enumerate(plans):
                fingerprint = plan.fingerprint(network_hash_for(plan.workload))
                fingerprints[index] = fingerprint
                cached = result_store.get(fingerprint)
                if cached is not None:
                    results[index] = cached
                    stats.store_hits += 1
                else:
                    pending.append(index)
            if stats.store_hits:
                logger.info(
                    "result store: %d/%d cells served from %s",
                    stats.store_hits, len(plans), result_store.root,
                )
        else:
            pending = list(range(len(plans)))

        if pending:
            shard_count = (
                shards if shards is not None
                else _auto_shard_count(backend, len(pending))
            )
            # Work items are cells, or -- for cells split into sample
            # shards -- the individual shards; ``work_targets`` maps each
            # item back to its (plan index, shard slot) so completions can
            # be routed.  Fault tolerance and timeouts wrap whatever the
            # work item is, so a sharded cell retries and fails at shard
            # granularity automatically.
            work_plans: List[EvaluationPlan] = []
            work_targets: List[Tuple[int, Optional[int]]] = []
            sharded: Dict[int, _ShardedCell] = {}
            for index in pending:
                plan = plans[index]
                cell_shards = plan.shards(shard_count) if shard_count > 1 else [plan]
                if len(cell_shards) <= 1:
                    work_plans.append(plan)
                    work_targets.append((index, None))
                    continue
                stats.sharded_cells += 1
                cell_fp = fingerprints.get(index)
                state = _ShardedCell(
                    plans=cell_shards,
                    results=[None] * len(cell_shards),
                    cell_fingerprint=cell_fp,
                )
                if result_store is not None and cell_fp is not None:
                    total = plan.effective_eval_size()
                    state.fingerprints = [
                        shard_fingerprint(cell_fp, *shard.sample_range(), total)
                        for shard in cell_shards
                    ]
                    # Resume at shard granularity: shards persisted by an
                    # interrupted earlier run are served from disk and only
                    # the remainder is dispatched.
                    for slot, shard in enumerate(cell_shards):
                        cached = result_store.get_shard(
                            cell_fp, state.fingerprints[slot]
                        )
                        if cached is not None:
                            state.results[slot] = cached
                            stats.shard_store_hits += 1
                if state.completed():
                    # Every shard was already stored: the cell is a store
                    # hit assembled from shard documents.
                    merged = merge_shard_results(state.results)
                    results[index] = merged
                    stats.store_hits += 1
                    if _store_result(result_store, cell_fp, merged, plan):
                        stats.store_writes += 1
                    result_store.delete_shards(cell_fp)
                    continue
                sharded[index] = state
                for slot, shard in enumerate(cell_shards):
                    if state.results[slot] is None:
                        work_plans.append(shard)
                        work_targets.append((index, slot))

            # Completion order, not submission order: each finished cell
            # (or shard) is persisted the moment it exists, so a run killed
            # while a slow item is in flight never loses faster items that
            # already finished.
            if fault_tolerant:
                work = partial(
                    evaluate_cell_tolerant,
                    retries=retries, timeout=cell_timeout, backoff=retry_backoff,
                )
            else:
                work = execute_cell
            evaluated = backend.map_unordered(work, work_plans)
            for position, result in evaluated:
                index, slot = work_targets[position]
                if slot is None:
                    results[index] = result
                    if isinstance(result, CellFailure):
                        stats.failed_cells += 1
                        logger.warning(
                            "cell %s failed after %d attempt(s); recording a "
                            "hole: %s", plans[index].cell_id(), result.attempts,
                            result.message,
                        )
                        continue
                    stats.evaluated_cells += 1
                    if result_store is not None and _store_result(
                        result_store, fingerprints[index], result, plans[index]
                    ):
                        stats.store_writes += 1
                    continue
                state = sharded[index]
                if isinstance(result, CellFailure):
                    # The first failing shard takes the whole cell's slot;
                    # siblings still run (and persist, for resume) but the
                    # cell renders as one hole.
                    if not state.failed:
                        state.failed = True
                        stats.failed_cells += 1
                        results[index] = result
                        logger.warning(
                            "shard %s failed after %d attempt(s); recording "
                            "a hole for the cell: %s",
                            state.plans[slot].cell_id(), result.attempts,
                            result.message,
                        )
                    continue
                state.results[slot] = result
                stats.evaluated_shards += 1
                if (
                    result_store is not None
                    and state.fingerprints is not None
                    and _store_shard_result(
                        result_store, state.cell_fingerprint,
                        state.fingerprints[slot], result, state.plans[slot],
                    )
                ):
                    stats.store_writes += 1
                if state.failed or not state.completed():
                    continue
                merged = merge_shard_results(state.results)
                results[index] = merged
                stats.evaluated_cells += 1
                if result_store is not None and state.cell_fingerprint is not None:
                    if _store_result(
                        result_store, state.cell_fingerprint, merged, plans[index]
                    ):
                        stats.store_writes += 1
                    result_store.delete_shards(state.cell_fingerprint)
    finally:
        for ref in pinned:
            _BATCH_WORKLOADS.pop(ref, None)
        if owns_backend:
            backend.close()
    return PlanEvaluation(results=list(results), stats=stats)


def _store_result(
    result_store: ResultStore,
    fingerprint: str,
    result: EvaluationResult,
    plan: EvaluationPlan,
) -> bool:
    """Persist one cell; an unwritable store degrades to a warning.

    The store is an accelerator, never a correctness dependency: a full
    disk or read-only mount must not abort a sweep whose results already
    exist in memory (the read path likewise degrades unreadable documents
    to misses).
    """
    try:
        result_store.put(fingerprint, result, plan.describe())
        return True
    except OSError as error:
        logger.warning(
            "result store write failed for %s (%s); continuing without "
            "persisting this cell", plan.cell_id(), error,
        )
        return False


def _store_shard_result(
    result_store: ResultStore,
    cell_fingerprint: str,
    fingerprint: str,
    result: EvaluationResult,
    plan: EvaluationPlan,
) -> bool:
    """Persist one shard result; same degradation contract as cells."""
    start, stop = plan.sample_range()
    try:
        result_store.put_shard(
            cell_fingerprint, fingerprint, result,
            dict(plan.describe(), shard=[start, stop]),
        )
        return True
    except OSError as error:
        logger.warning(
            "shard store write failed for %s (%s); continuing without "
            "persisting this shard", plan.cell_id(), error,
        )
        return False
