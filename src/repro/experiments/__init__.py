"""Experiment harness reproducing the paper's figures and tables.

* :mod:`repro.experiments.config`    -- experiment presets (datasets, models,
  time steps, noise sweeps) at paper scale and at CPU-friendly bench scale,
* :mod:`repro.experiments.workloads` -- trained-model / converted-network
  preparation and caching,
* :mod:`repro.experiments.runner`    -- the generic (coding x noise) sweep
  runner all figures are built from,
* :mod:`repro.experiments.figures`   -- one entry point per paper figure
  (Figs. 2, 3, 4, 5B, 6, 7, 8) plus the hardware-fault robustness sweep,
* :mod:`repro.experiments.tables`    -- Tables I and II plus the
  hardware-fault table,
* :mod:`repro.experiments.reporting` -- plain-text rendering of the series
  and table rows the paper reports.
"""

from repro.experiments.config import (
    BENCH_ATTACK_BUDGETS,
    BENCH_SCALE,
    BURST_ERROR_LEVELS,
    FAULT_LEVELS,
    FAULT_NOISE_KINDS,
    NOISE_KINDS,
    PAPER_SCALE,
    TABLE3_FAULT_LEVELS,
    AttackSweepConfig,
    DatasetConfig,
    ExperimentScale,
    MethodSpec,
    SweepConfig,
    dataset_config,
)
from repro.experiments.workloads import PreparedWorkload, prepare_workload
from repro.experiments.runner import (
    SweepResult,
    run_attack_sweep,
    run_attack_sweeps,
    run_noise_sweep,
    run_sweeps,
)
from repro.experiments.figures import (
    figure2_deletion,
    figure3_jitter,
    figure4_weight_scaling_ttas,
    figure5_activation_distribution,
    figure6_ttas_jitter,
    figure7_deletion_comparison,
    figure8_jitter_comparison,
    figure_adversarial,
    figure_fault_robustness,
)
from repro.experiments.tables import (
    table1_deletion,
    table2_jitter,
    table3_faults,
    table_adversarial,
)
from repro.experiments.reporting import (
    format_activation_distributions,
    format_figure_series,
    format_table_rows,
    render_markdown_table,
)

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "DatasetConfig",
    "dataset_config",
    "MethodSpec",
    "SweepConfig",
    "AttackSweepConfig",
    "BENCH_ATTACK_BUDGETS",
    "PreparedWorkload",
    "prepare_workload",
    "SweepResult",
    "run_noise_sweep",
    "run_sweeps",
    "run_attack_sweep",
    "run_attack_sweeps",
    "figure2_deletion",
    "figure3_jitter",
    "figure4_weight_scaling_ttas",
    "figure5_activation_distribution",
    "figure6_ttas_jitter",
    "figure7_deletion_comparison",
    "figure8_jitter_comparison",
    "figure_adversarial",
    "figure_fault_robustness",
    "table1_deletion",
    "table2_jitter",
    "table3_faults",
    "table_adversarial",
    "FAULT_NOISE_KINDS",
    "NOISE_KINDS",
    "FAULT_LEVELS",
    "BURST_ERROR_LEVELS",
    "TABLE3_FAULT_LEVELS",
    "format_figure_series",
    "format_table_rows",
    "format_activation_distributions",
    "render_markdown_table",
]
