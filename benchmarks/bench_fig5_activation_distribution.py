"""Figure 5B: distribution of the noisy activation A' per coding scheme.

The paper sketches how deletion noise reshapes a single activation A:
rate/phase/burst produce a continuous distribution concentrated around
(1-p)A, TTFS becomes all-or-none (mass only at 0 and A), and TTAS keeps most
mass near the extremes while re-admitting intermediate values.
"""

import numpy as np

from benchmarks.conftest import SEED, emit_report, run_once
from repro.experiments.figures import figure5_activation_distribution
from repro.experiments.reporting import format_activation_distributions


def test_fig5_activation_distribution(benchmark):
    """Regenerate the Fig. 5B activation histograms."""

    def run():
        return figure5_activation_distribution(
            clean_value=0.8, deletion_probability=0.4, trials=400, seed=SEED
        )

    distributions = run_once(benchmark, run)
    emit_report("fig5_activation_distribution", format_activation_distributions(
        distributions, "Fig. 5B -- activation distribution under deletion (p=0.4, A=0.8)"
    ))

    # Every coding keeps the expected value near (1 - p) * A.
    for name, dist in distributions.items():
        assert abs(dist.mean - 0.6 * 0.8) < 0.12, name

    # TTFS is all-or-none: (almost) no mass strictly between 20% and 80% of A.
    ttfs = distributions["ttfs"]
    centers = 0.5 * (ttfs.bin_edges[:-1] + ttfs.bin_edges[1:])
    middle = (centers > 0.2 * 0.8) & (centers < 0.8 * 0.8)
    assert ttfs.probabilities[middle].sum() < 0.05

    # Rate coding is continuous: most mass strictly between the extremes.
    rate = distributions["rate"]
    centers = 0.5 * (rate.bin_edges[:-1] + rate.bin_edges[1:])
    middle = (centers > 0.2 * 0.8) & (centers < 0.8 * 0.8)
    assert rate.probabilities[middle].sum() > 0.5

    # TTAS re-admits intermediate values (graded failures).
    ttas = distributions["ttas"]
    centers = 0.5 * (ttas.bin_edges[:-1] + ttas.bin_edges[1:])
    middle = (centers > 0.2 * 0.8) & (centers < 0.8 * 0.8)
    assert ttas.probabilities[middle].sum() > 0.1
