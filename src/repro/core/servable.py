"""Immutable servable artifact shared by the pipeline and the serving layer.

A :class:`ServableModel` freezes everything that is fixed at conversion time
-- the converted network, its calibration scales, the conversion fingerprint
and the analog reference accuracy -- and memoises the derived objects that
are expensive to rebuild per request (coders, per-layer simulation
protocols, evaluator instances).  One instance can be shared by any number
of threads:

* the frozen fields never change after construction,
* the memo caches are guarded by a lock and their factories are pure, so a
  racing double-build is at worst wasted work, never a torn value,
* per-spec locks (:meth:`spec_lock`) let callers serialise the one genuinely
  stateful consumer -- the time-stepped simulator, whose neurons hold
  membrane state across a run -- without a global lock.

Both :class:`repro.core.pipeline.NoiseRobustSNN` and the serving subsystem
(:mod:`repro.serving`) consume the same artifact, so a model loaded once
serves sweeps and request traffic alike.  The conversion-time state
round-trips through the :class:`~repro.execution.store.ResultStore`
``workloads/`` section via :meth:`conversion_payload` -- the exact document
shape :func:`repro.experiments.workloads.prepare_workload` has always
persisted, keyed by the same conversion fingerprints.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.coding.base import NeuralCoder
from repro.coding.registry import create_coder
from repro.conversion.converter import ConvertedSNN


def _freeze_kwargs(kwargs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical hashable form of a coder-kwargs dict (sorted items)."""
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class ServableModel:
    """A frozen, shareable view of one converted network.

    Attributes
    ----------
    network:
        The converted network.  Treated as immutable: every consumer that
        needs to mutate weights (quantisation ablations, adversarial
        rescaling) must copy first -- the convention the evaluators already
        follow.
    key:
        The conversion fingerprint
        (:func:`repro.experiments.workloads.conversion_key`) the artifact is
        addressed by in the registry and the result store; ``None`` for
        hand-built networks that never touch either.
    dataset / scale_name / seed:
        Workload identity, when known (registry reload needs it).
    dnn_accuracy:
        Analog reference accuracy of the source DNN (upper bound of every
        SNN evaluation); ``None`` when never measured.
    """

    network: ConvertedSNN
    key: Optional[str] = None
    dataset: Optional[str] = None
    scale_name: Optional[str] = None
    seed: Optional[int] = None
    dnn_accuracy: Optional[float] = None
    _cache: Dict[Hashable, Any] = field(
        default_factory=dict, repr=False, compare=False
    )
    _locks: Dict[Hashable, threading.RLock] = field(
        default_factory=dict, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    # -- construction ------------------------------------------------------------
    @classmethod
    def wrap(cls, network, **metadata) -> "ServableModel":
        """Coerce a network into a servable; existing servables pass through.

        The pass-through matters: it keeps one memo cache per artifact alive
        across the pipeline facade, the registry and the scheduler instead
        of rebuilding coders and protocols at every layer boundary.
        """
        if isinstance(network, ServableModel):
            return network
        if not isinstance(network, ConvertedSNN):
            raise TypeError(
                f"expected a ConvertedSNN or ServableModel, got "
                f"{type(network).__name__}"
            )
        return cls(network=network, **metadata)

    # -- thread-safe memoisation ---------------------------------------------------
    def cached(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return ``factory()`` memoised under ``key`` (double-checked lock).

        The factory runs outside the lock so slow builds (a time-stepped
        simulator's bias images) do not serialise unrelated lookups; a
        racing duplicate build is discarded in favour of the first one
        installed, so every caller observes one consistent object.
        """
        with self._lock:
            if key in self._cache:
                return self._cache[key]
        value = factory()
        with self._lock:
            return self._cache.setdefault(key, value)

    def spec_lock(self, key: Hashable) -> threading.RLock:
        """A lock dedicated to ``key`` (created on first request).

        Serialises the stateful consumers of one memoised object -- e.g.
        runs of a time-stepped simulator, whose neuron populations carry
        membrane state -- while leaving other specs of the same model free
        to run concurrently.
        """
        with self._lock:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.RLock()
            return lock

    # -- derived artifacts ---------------------------------------------------------
    def coder(self, coding: str, num_steps: int, **coder_kwargs) -> NeuralCoder:
        """The memoised coder of a (coding, num_steps, kwargs) combination.

        Coders are shareable: their only mutable state is idempotent weight
        caches (:class:`repro.coding.base.NeuralCoder` memoises its step /
        decode weights on first use), so handing one instance to many
        threads is safe and keeps those caches warm across requests.
        """
        try:
            cache_key = ("coder", coding, int(num_steps), _freeze_kwargs(coder_kwargs))
        except TypeError:
            # Unhashable kwarg (exotic caller): fall back to a fresh coder.
            return create_coder(coding, num_steps=int(num_steps), **coder_kwargs)
        return self.cached(
            cache_key,
            lambda: create_coder(coding, num_steps=int(num_steps), **coder_kwargs),
        )

    def simulation_protocol(
        self,
        coding: str,
        num_steps: int,
        threshold: Optional[float] = None,
        kernel_scale: float = 1.0,
        **coder_kwargs,
    ):
        """The memoised per-layer simulation protocol of a coder spec.

        The protocol (:class:`repro.coding.protocol.SimulationProtocol`) is
        pure layout data -- windows, kernels, neuron factories -- derived
        from the coder and the network's spiking-population count, so one
        instance serves every simulator build of the spec.
        """
        coder = self.coder(coding, num_steps, **coder_kwargs)
        theta = float(threshold) if threshold is not None else coder.default_threshold()
        cache_key = (
            "protocol", coding, int(num_steps), _freeze_kwargs(coder_kwargs),
            theta, float(kernel_scale),
        )
        num_hidden = sum(
            1 for segment in self.network.segments if segment.ends_with_spikes
        )
        return self.cached(
            cache_key,
            lambda: coder.simulation_protocol(
                num_hidden, threshold=theta, kernel_scale=float(kernel_scale)
            ),
        )

    # -- inventory -----------------------------------------------------------------
    def weight_scales(self) -> List[float]:
        """Calibration scales of every spiking interface, input first."""
        return self.network.activation_scales()

    def resident_bytes(self) -> int:
        """Approximate resident size: every parameter tensor of the network.

        The LRU budget of the model registry is expressed in these bytes.
        Memoised -- the walk touches every layer -- and stable, since the
        network is frozen by contract.
        """
        def measure() -> int:
            total = 0
            for segment in self.network.segments:
                for layer in segment.layers:
                    for array in getattr(layer, "params", {}).values():
                        total += int(np.asarray(array).nbytes)
            return total

        return self.cached(("resident_bytes",), measure)

    # -- store round-trip ----------------------------------------------------------
    def conversion_payload(self) -> Dict[str, Any]:
        """The workload-conversion document body of this artifact.

        Identical in shape (and bit-for-bit in float values) to what
        :func:`repro.experiments.workloads.prepare_workload` has always
        written to the store's ``workloads/`` section, so existing documents
        keep loading and new ones keep fingerprinting identically.
        """
        statistics = self.network.statistics
        if statistics is None:
            raise ValueError(
                "cannot build a conversion payload without activation "
                "statistics (hand-built network?)"
            )
        payload: Dict[str, Any] = {
            "scales": [float(v) for v in statistics.scales],
            "percentile": float(statistics.percentile),
            "means": [float(v) for v in statistics.means],
            "maxima": [float(v) for v in statistics.maxima],
            "sample_size": int(statistics.sample_size),
            "input_scale": float(self.network.input_scale),
        }
        if self.dataset is not None:
            payload["dataset"] = self.dataset
        if self.scale_name is not None:
            payload["scale"] = self.scale_name
        if self.seed is not None:
            payload["seed"] = int(self.seed)
        if self.dnn_accuracy is not None:
            payload["dnn_accuracy"] = float(self.dnn_accuracy)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        short = (self.key or "unkeyed")[:12]
        return (
            f"ServableModel(key={short!r}, network={self.network.source_name!r}, "
            f"segments={len(self.network.segments)})"
        )
