"""Table I: spike deletion on MNIST / CIFAR-10 / CIFAR-100 (all methods + WS).

Paper setting: accuracy and number of spikes at deletion probabilities
{clean, 0.2, 0.5, 0.8} and their average, for rate/phase/burst/TTFS with
weight scaling and the proposed TTAS with weight scaling, on all three
datasets.  Reported shape: TTAS+WS has the best noisy average among the
temporal codings on every dataset while using ~2 orders of magnitude fewer
spikes than the rate-like codings.
"""

from benchmarks.conftest import EVAL_SIZE, SEED, emit_report, run_once
from repro.experiments import format_table_rows, table1_deletion


def test_table1_deletion(benchmark, workloads):
    """Regenerate the Table I rows on the three synthetic stand-ins."""
    datasets = ("mnist", "cifar10", "cifar100")
    pool = {name: workloads.get(name) for name in datasets}

    def run():
        return table1_deletion(
            datasets=datasets, workloads=pool, seed=SEED, eval_size=EVAL_SIZE,
            ttas_duration=5,
        )

    table = run_once(benchmark, run)
    emit_report("table1_deletion", format_table_rows(table, "Table I -- spike deletion (synthetic stand-ins)"))

    for dataset in datasets:
        rows = {row.method: row for row in table.rows_for(dataset)}
        # The proposed method beats TTFS+WS on the noisy average.
        assert rows["TTAS(5)+WS"].average_accuracy >= rows["TTFS+WS"].average_accuracy - 0.02
        # Temporal codings use far fewer spikes than rate coding.
        assert rows["TTFS+WS"].spike_counts[0] * 2 < rows["Rate+WS"].spike_counts[0]
        assert rows["TTAS(5)+WS"].spike_counts[0] < rows["Rate+WS"].spike_counts[0]
