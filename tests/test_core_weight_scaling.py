"""Tests for the weight-scaling compensation (Sec. IV of the paper)."""

import numpy as np
import pytest

from repro.core import WeightScaling


class TestFactorRules:
    def test_inverse_rule(self):
        scaling = WeightScaling(mode="inverse")
        assert scaling.factor(0.0) == 1.0
        assert abs(scaling.factor(0.5) - 2.0) < 1e-12
        assert abs(scaling.factor(0.8) - 5.0) < 1e-12

    def test_proportional_rule(self):
        scaling = WeightScaling(mode="proportional", alpha=1.0)
        assert abs(scaling.factor(0.5) - 1.5) < 1e-12
        assert abs(scaling.factor(0.9) - 1.9) < 1e-12

    def test_proportional_alpha(self):
        scaling = WeightScaling(mode="proportional", alpha=2.0)
        assert abs(scaling.factor(0.5) - 2.0) < 1e-12

    def test_disabled_policy(self):
        scaling = WeightScaling.disabled()
        assert not scaling.enabled
        assert scaling.factor(0.9) == 1.0

    def test_max_factor_caps_divergence(self):
        scaling = WeightScaling(mode="inverse", max_factor=4.0)
        assert scaling.factor(0.99) == 4.0
        assert scaling.factor(1.0) == 4.0

    def test_factor_monotone_in_p(self):
        scaling = WeightScaling()
        factors = scaling.factors([0.0, 0.2, 0.5, 0.8, 0.9])
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WeightScaling().factor(1.5)

    def test_invalid_mode(self):
        with pytest.raises(Exception):
            WeightScaling(mode="quadratic")


class TestScaleWeights:
    def test_weights_scaled_by_c(self):
        scaling = WeightScaling(mode="inverse")
        weights = np.array([[1.0, -2.0], [0.5, 4.0]])
        scaled = scaling.scale_weights(weights, 0.5)
        assert np.allclose(scaled, weights * 2.0)

    def test_zero_probability_identity(self):
        weights = np.random.default_rng(0).random((3, 3))
        assert np.allclose(WeightScaling().scale_weights(weights, 0.0), weights)

    def test_inverse_exactly_compensates_expected_loss(self):
        # E[(1-p) * C * A] == A when C = 1/(1-p).
        scaling = WeightScaling(mode="inverse")
        for p in (0.1, 0.3, 0.5, 0.8):
            assert abs((1 - p) * scaling.factor(p) - 1.0) < 1e-12

    def test_proportional_undercompensates_at_high_p(self):
        scaling = WeightScaling(mode="proportional")
        assert (1 - 0.8) * scaling.factor(0.8) < 1.0


class TestDescribe:
    def test_labels(self):
        assert "1/(1-p)" in WeightScaling(mode="inverse").describe()
        assert "no scaling" == WeightScaling.disabled().describe()
        assert "1 p" in WeightScaling(mode="proportional").describe()
