"""Parametric (synaptic-weight) noise.

The paper's Sec. II-B distinguishes two ways of modelling hardware noise:
noisy parameters (weights, thresholds, time constants) and noisy output
spikes.  The paper adopts the latter; this module implements the former as an
extension so that the two approaches can be compared (ablation bench
``bench_ablation_weight_noise``).  Static fixed-pattern noise corresponds to
drawing the perturbation once per network; dynamic noise redraws it per
inference.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.utils.rng import RngLike, default_rng
from repro.utils.validation import check_non_negative


class GaussianWeightNoise:
    """Multiplicative Gaussian perturbation of synaptic weights.

    Each weight ``w`` becomes ``w * (1 + eps)`` with
    ``eps ~ N(0, relative_std)``, the standard model for device mismatch in
    analog synapse arrays.
    """

    name = "weight-noise"

    def __init__(self, relative_std: float, static: bool = True):
        check_non_negative("relative_std", relative_std)
        self.relative_std = float(relative_std)
        self.static = bool(static)
        self._cached: Dict[int, np.ndarray] = {}

    def perturb(self, weights: np.ndarray, key: int = 0, rng: RngLike = None) -> np.ndarray:
        """Return a noisy copy of ``weights``.

        ``key`` identifies the parameter tensor so that static noise reuses
        the same perturbation across calls (fixed-pattern noise), while
        dynamic noise redraws it every time.
        """
        weights = np.asarray(weights)
        if self.relative_std == 0.0:
            return weights.copy()
        if self.static and key in self._cached:
            factor = self._cached[key]
            if factor.shape != weights.shape:
                raise ValueError(
                    f"cached perturbation for key {key} has shape {factor.shape}, "
                    f"expected {weights.shape}"
                )
        else:
            generator = default_rng(rng)
            factor = 1.0 + generator.normal(0.0, self.relative_std, size=weights.shape)
            if self.static:
                self._cached[key] = factor
        return (weights * factor).astype(weights.dtype)

    def reset(self) -> None:
        """Discard cached fixed-pattern perturbations."""
        self._cached.clear()

    def describe(self) -> str:
        kind = "static" if self.static else "dynamic"
        return f"weight-noise(std={self.relative_std:g}, {kind})"


def apply_weight_noise(
    weight_list: List[np.ndarray],
    relative_std: float,
    static: bool = True,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Perturb a list of weight tensors with one shared noise model."""
    model = GaussianWeightNoise(relative_std, static=static)
    generator = default_rng(rng)
    return [
        model.perturb(w, key=i, rng=generator) for i, w in enumerate(weight_list)
    ]
