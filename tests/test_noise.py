"""Tests for the noise models (deletion, jitter, composite, weight noise)."""

import numpy as np
import pytest

from repro.coding import RateCoder, TTFSCoder
from repro.noise import (
    DeletionNoise,
    GaussianWeightNoise,
    IdentityNoise,
    JitterNoise,
    NoiseInjector,
    apply_weight_noise,
)
from repro.snn.spikes import SpikeTrainArray


def dense_train(seed=0, shape=(20, 100), p=0.3):
    counts = (np.random.default_rng(seed).random(shape) < p).astype(np.int16)
    return SpikeTrainArray(counts)


class TestIdentityNoise:
    def test_returns_equal_copy(self):
        train = dense_train()
        clean = IdentityNoise().apply(train, rng=0)
        assert clean == train
        assert clean is not train

    def test_describe(self):
        assert IdentityNoise().describe() == "clean"


class TestDeletionNoise:
    def test_survival_rate(self):
        train = dense_train(p=0.5)
        noisy = DeletionNoise(0.4).apply(train, rng=0)
        ratio = noisy.total_spikes() / train.total_spikes()
        assert abs(ratio - 0.6) < 0.05

    def test_expected_survival_helper(self):
        assert DeletionNoise(0.25).expected_survival() == 0.75

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DeletionNoise(1.2)

    def test_does_not_mutate_input(self):
        train = dense_train()
        before = train.total_spikes()
        DeletionNoise(0.9).apply(train, rng=0)
        assert train.total_spikes() == before

    def test_describe_contains_probability(self):
        assert "0.3" in DeletionNoise(0.3).describe()

    def test_reduces_expected_activation_to_one_minus_p(self):
        # Section III: E[A'] = (1 - p) A for every coding scheme.
        coder = RateCoder(num_steps=64)
        values = np.random.default_rng(0).random(500)
        train = coder.encode(values)
        noisy = DeletionNoise(0.3).apply(train, rng=1)
        ratio = coder.decode(noisy).sum() / coder.decode(train).sum()
        assert abs(ratio - 0.7) < 0.03


class TestJitterNoise:
    def test_preserves_count_in_clip_mode(self):
        train = dense_train()
        noisy = JitterNoise(2.0).apply(train, rng=0)
        assert noisy.total_spikes() == train.total_spikes()

    def test_drop_mode(self):
        train = dense_train()
        noisy = JitterNoise(5.0, mode="drop").apply(train, rng=0)
        assert noisy.total_spikes() <= train.total_spikes()

    def test_zero_sigma_is_identity(self):
        train = dense_train()
        assert JitterNoise(0.0).apply(train, rng=0) == train

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            JitterNoise(-1.0)
        with pytest.raises(ValueError):
            JitterNoise(1.0, mode="reflect")

    def test_ttfs_value_perturbed(self):
        coder = TTFSCoder(num_steps=16)
        values = np.full(300, 0.5)
        train = coder.encode(values)
        noisy = JitterNoise(2.0).apply(train, rng=0)
        errors = np.abs(coder.decode(noisy) - coder.roundtrip(values))
        assert errors.mean() > 0.02

    def test_describe(self):
        assert "2" in JitterNoise(2.0).describe()


class TestNoiseInjector:
    def test_from_levels_builds_expected_models(self):
        injector = NoiseInjector.from_levels(deletion_probability=0.3, jitter_sigma=1.0)
        names = [m.name for m in injector.models]
        assert names == ["deletion", "jitter"]

    def test_from_levels_clean(self):
        injector = NoiseInjector.from_levels()
        assert injector.describe() == "clean"
        train = dense_train()
        assert injector.apply(train, rng=0) == train

    def test_composite_applies_both(self):
        train = dense_train(p=0.5)
        injector = NoiseInjector.from_levels(deletion_probability=0.5, jitter_sigma=1.0)
        noisy = injector.apply(train, rng=0)
        assert noisy.total_spikes() < train.total_spikes()

    def test_deterministic_given_seed(self):
        train = dense_train()
        injector = NoiseInjector.from_levels(deletion_probability=0.4, jitter_sigma=1.5)
        assert injector.apply(train, rng=7) == injector.apply(train, rng=7)

    def test_adding_model_does_not_change_other_stream(self):
        # The deletion realisation must be identical whether or not jitter is
        # also applied (independent derived streams).
        train = dense_train(p=0.4)
        deletion_only = NoiseInjector([DeletionNoise(0.5)]).apply(train, rng=3)
        both = NoiseInjector([DeletionNoise(0.5), JitterNoise(0.0)]).apply(train, rng=3)
        assert deletion_only == both

    def test_describe_joins_models(self):
        injector = NoiseInjector.from_levels(deletion_probability=0.2, jitter_sigma=0.5)
        text = injector.describe()
        assert "deletion" in text and "jitter" in text


class TestCompositionOrder:
    """The injector's model order is a documented, frozen contract."""

    ALL_LEVELS = dict(
        deletion_probability=0.2,
        jitter_sigma=1.0,
        burst_error_fraction=0.1,
        dead_fraction=0.1,
        stuck_fraction=0.1,
    )

    def test_from_levels_follows_composition_order(self):
        from repro.noise.injector import COMPOSITION_ORDER

        injector = NoiseInjector.from_levels(**self.ALL_LEVELS)
        assert tuple(m.name for m in injector.models) == COMPOSITION_ORDER

    def test_order_is_stable_under_partial_levels(self):
        # Disabling models must drop them without reordering the survivors.
        from repro.noise.injector import COMPOSITION_ORDER

        injector = NoiseInjector.from_levels(
            jitter_sigma=1.0, stuck_fraction=0.1, deletion_probability=0.2
        )
        names = tuple(m.name for m in injector.models)
        assert names == ("deletion", "jitter", "stuck")
        assert names == tuple(n for n in COMPOSITION_ORDER if n in names)

    def test_full_stack_deterministic(self):
        train = dense_train(p=0.4)
        injector = NoiseInjector.from_levels(**self.ALL_LEVELS)
        assert injector.apply(train, rng=11) == injector.apply(train, rng=11)

    def test_timing_and_fault_stack_is_backend_invariant(self):
        # Jitter, burst, dead and stuck draw per-spike / per-neuron streams,
        # so the composed corruption is bit-identical whether the input train
        # is dense or event-driven: same order, same derived streams.
        dense = dense_train(seed=5, p=0.4)
        events = dense.to_events()
        injector = NoiseInjector.from_levels(
            jitter_sigma=1.0, burst_error_fraction=0.1,
            dead_fraction=0.1, stuck_fraction=0.1,
        )
        noisy_dense = injector.apply(dense, rng=23)
        noisy_events = injector.apply(events, rng=23)
        assert np.array_equal(
            noisy_dense.to_dense().counts, noisy_events.to_dense().counts
        )

    def test_deletion_backends_deterministic_and_distribution_matched(self):
        # Deletion is the documented exception to bit-level backend
        # invariance: the dense backend draws one variate per grid slot, the
        # event backend one per event (the O(events) optimisation).  Each
        # backend is individually deterministic and both thin at the same
        # rate.
        dense = dense_train(seed=5, p=0.4)
        events = dense.to_events()
        injector = NoiseInjector.from_levels(**self.ALL_LEVELS)
        assert injector.apply(dense, rng=23) == injector.apply(dense, rng=23)
        assert injector.apply(events, rng=23) == injector.apply(events, rng=23)
        survival = 1.0 - self.ALL_LEVELS["deletion_probability"]
        deletion = NoiseInjector.from_levels(
            deletion_probability=self.ALL_LEVELS["deletion_probability"]
        )
        for train in (dense, events):
            kept = deletion.apply(train, rng=23).total_spikes()
            assert abs(kept / train.total_spikes() - survival) < 0.1

    def test_order_matters(self):
        # Sanity check that the contract is not vacuous: swapping deletion
        # and stuck-at-fire changes the realisation (stuck spikes would be
        # re-deleted), so the frozen order is load-bearing.
        from repro.noise import DeletionNoise, StuckAtFireNoise

        train = dense_train(seed=9, p=0.5)
        forward = NoiseInjector([DeletionNoise(0.5), StuckAtFireNoise(0.3)])
        swapped = NoiseInjector([StuckAtFireNoise(0.3), DeletionNoise(0.5)])
        assert forward.apply(train, rng=4) != swapped.apply(train, rng=4)


class TestWeightNoise:
    def test_static_noise_is_reused(self):
        model = GaussianWeightNoise(0.1, static=True)
        w = np.ones((4, 4))
        a = model.perturb(w, key=0, rng=0)
        b = model.perturb(w, key=0, rng=99)
        assert np.allclose(a, b)

    def test_dynamic_noise_redrawn(self):
        model = GaussianWeightNoise(0.1, static=False)
        w = np.ones((4, 4))
        a = model.perturb(w, key=0, rng=np.random.default_rng(0))
        b = model.perturb(w, key=0, rng=np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_zero_std_identity(self):
        w = np.random.default_rng(0).random((3, 3))
        assert np.allclose(GaussianWeightNoise(0.0).perturb(w), w)

    def test_relative_magnitude(self):
        model = GaussianWeightNoise(0.05, static=False)
        w = np.full((200, 200), 2.0)
        noisy = model.perturb(w, rng=0)
        assert abs((noisy / w - 1.0).std() - 0.05) < 0.005

    def test_reset_clears_cache(self):
        model = GaussianWeightNoise(0.1, static=True)
        w = np.ones((2, 2))
        a = model.perturb(w, key=0, rng=0)
        model.reset()
        b = model.perturb(w, key=0, rng=1)
        assert not np.allclose(a, b)

    def test_shape_mismatch_detected(self):
        model = GaussianWeightNoise(0.1, static=True)
        model.perturb(np.ones((2, 2)), key=0, rng=0)
        with pytest.raises(ValueError):
            model.perturb(np.ones((3, 3)), key=0, rng=0)

    def test_apply_weight_noise_list(self):
        weights = [np.ones((2, 2)), np.ones((3,))]
        noisy = apply_weight_noise(weights, 0.1, rng=0)
        assert len(noisy) == 2
        assert noisy[0].shape == (2, 2)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            GaussianWeightNoise(-0.1)
