"""Chaos harness: fault-tolerant sweep execution under injected failures.

Injects the failure modes a long sweep actually meets -- worker processes
killed mid-cell, transiently failing cells, hung cells, corrupt store
documents -- and asserts the engine's recovery guarantees: completed cells
are never lost or re-run, transient failures succeed within the retry
budget, hangs trip the per-cell timeout, and exhausted cells degrade to
explicit holes instead of aborting the sweep.
"""

import logging
import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.core.pipeline import EvaluationResult
from repro.execution import (
    CellEvaluationError,
    CellFailure,
    ProcessExecutor,
    ResultStore,
    ThreadExecutor,
    WorkloadRef,
    build_sweep_plans,
    evaluate_plans,
    resolve_cell_retries,
    resolve_cell_timeout,
)
from repro.execution import engine as engine_module
from repro.execution.engine import CELL_RETRIES_ENV, CELL_TIMEOUT_ENV
from repro.execution.plan import evaluate_plan as real_evaluate_plan
from repro.experiments import prepare_workload
from repro.experiments.config import TEST_SCALE, MethodSpec, SweepConfig

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-kill chaos relies on fork inheriting the monkeypatched engine",
)


@pytest.fixture(scope="module")
def chaos_workload():
    return prepare_workload("mnist", scale=TEST_SCALE, seed=0, use_cache=False)


def chaos_config(**overrides):
    defaults = dict(
        dataset="mnist",
        methods=(MethodSpec(coding="ttfs"),
                 MethodSpec(coding="ttas", target_duration=3)),
        noise_kind="dead",
        levels=(0.0, 0.3),
        scale=TEST_SCALE,
        seed=0,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def _compile(config, workload, eval_size=10):
    ref = WorkloadRef.from_sweep_config(config, use_cache=False)
    plans = build_sweep_plans(config, eval_size=eval_size, use_cache=False)
    return ref, plans


# ---------------------------------------------------------------------------
# Worker kills: broken-pool recovery + zero-loss resume
# ---------------------------------------------------------------------------
@fork_only
class TestWorkerKill:
    def test_killed_worker_sweep_completes_and_resumes_clean(
        self, chaos_workload, tmp_path, monkeypatch
    ):
        """SIGKILL a worker mid-cell: the sweep must still finish with every
        cell evaluated, and a resume must re-run zero cells."""
        sentinel = tmp_path / "already-died"

        def killer_evaluate_plan(plan, workload):
            if (plan.method_label == "TTFS" and plan.level == 0.3
                    and not sentinel.exists()):
                sentinel.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", killer_evaluate_plan)
        store = ResultStore(str(tmp_path / "store"))
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        executor = ProcessExecutor(2)
        try:
            evaluation = evaluate_plans(
                plans, executor=executor, store=store,
                workloads={ref: chaos_workload},
            )
        finally:
            executor.close()
        assert sentinel.exists()  # the kill actually happened
        assert evaluation.stats.failed_cells == 0
        assert all(isinstance(r, EvaluationResult) for r in evaluation.results)
        assert len(list(store.fingerprints())) == len(plans)

        # Resume: every cell must be served from the store, none re-run.
        monkeypatch.setattr(engine_module, "evaluate_plan", real_evaluate_plan)
        resumed = evaluate_plans(
            plans, store=store, workloads={ref: chaos_workload}
        )
        assert resumed.stats.store_hits == len(plans)
        assert resumed.stats.evaluated_cells == 0
        assert resumed.results == evaluation.results

    def test_killed_worker_mid_shard_sweep_completes_and_resumes(
        self, chaos_workload, tmp_path, monkeypatch
    ):
        """SIGKILL a worker while it evaluates one *sample shard* of a
        sharded cell: the broken-pool recovery must finish the sweep with
        every shard merged, and a resume must re-run zero shards."""
        sentinel = tmp_path / "already-died"

        def killer_evaluate_plan(plan, workload):
            if (plan.method_label == "TTFS" and plan.level == 0.3
                    and plan.is_shard and plan.sample_range()[0] > 0
                    and not sentinel.exists()):
                sentinel.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", killer_evaluate_plan)
        store = ResultStore(str(tmp_path / "store"))
        config = chaos_config()
        ref = WorkloadRef.from_sweep_config(config, use_cache=False)
        plans = build_sweep_plans(
            config, eval_size=10, batch_size=4, use_cache=False
        )
        executor = ProcessExecutor(2)
        try:
            evaluation = evaluate_plans(
                plans, executor=executor, store=store,
                workloads={ref: chaos_workload}, shards=2,
            )
        finally:
            executor.close()
        assert sentinel.exists()  # the kill actually happened, mid-shard
        assert evaluation.stats.failed_cells == 0
        assert evaluation.stats.sharded_cells == len(plans)
        assert all(isinstance(r, EvaluationResult) for r in evaluation.results)
        # Every cell merged and persisted; no shard documents left behind.
        assert len(list(store.fingerprints())) == len(plans)
        assert store.shard_stats()["shard_docs"] == 0

        # Resume: merged cell documents serve everything, no shard re-runs.
        monkeypatch.setattr(engine_module, "evaluate_plan", real_evaluate_plan)
        resumed = evaluate_plans(
            plans, store=store, workloads={ref: chaos_workload}, shards=2,
        )
        assert resumed.stats.store_hits == len(plans)
        assert resumed.stats.evaluated_cells == 0
        assert resumed.stats.evaluated_shards == 0
        assert resumed.results == evaluation.results

        # The chaos-interrupted sharded run still matches the unsharded
        # ground truth bit-exactly.
        unsharded = evaluate_plans(
            plans, store=False, workloads={ref: chaos_workload}
        )
        assert unsharded.results == evaluation.results

    def test_repeated_kills_exhaust_the_respawn_budget(
        self, chaos_workload, monkeypatch
    ):
        """A cell that kills its worker on *every* attempt must eventually
        surface the broken pool instead of respawning forever."""

        def always_kill(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                os.kill(os.getpid(), signal.SIGKILL)
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", always_kill)
        monkeypatch.setattr(ProcessExecutor, "max_pool_respawns", 1)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload, eval_size=8)
        executor = ProcessExecutor(2)
        try:
            with pytest.raises(Exception) as excinfo:
                evaluate_plans(
                    plans, executor=executor, workloads={ref: chaos_workload}
                )
        finally:
            executor.close()
        assert "process pool" in str(excinfo.value).lower() or "terminated" in str(
            excinfo.value
        ).lower() or "broken" in str(excinfo.value).lower()


# ---------------------------------------------------------------------------
# Transient failures: retry with backoff
# ---------------------------------------------------------------------------
class TestTransientFailures:
    def test_transient_cell_succeeds_within_retry_budget(
        self, chaos_workload, monkeypatch
    ):
        attempts = {"count": 0}

        def flaky(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                attempts["count"] += 1
                if attempts["count"] <= 2:
                    raise RuntimeError("transient glitch")
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", flaky)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        evaluation = evaluate_plans(
            plans, workloads={ref: chaos_workload},
            retries=3, retry_backoff=0.001,
        )
        assert attempts["count"] == 3  # two failures, then success
        assert evaluation.stats.failed_cells == 0
        assert all(isinstance(r, EvaluationResult) for r in evaluation.results)

    def test_exhausted_retries_degrade_to_a_hole(self, chaos_workload, monkeypatch):
        def doomed(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                raise ValueError("permanently broken cell")
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", doomed)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        evaluation = evaluate_plans(
            plans, workloads={ref: chaos_workload},
            retries=2, retry_backoff=0.001,
        )
        assert evaluation.stats.failed_cells == 1
        assert evaluation.stats.evaluated_cells == len(plans) - 1
        failures = evaluation.failures
        assert len(failures) == 1
        index, failure = failures[0]
        assert plans[index].method_label == "TTFS"
        assert failure.attempts == 3
        assert "permanently broken cell" in failure.message
        # The formatted remote traceback crossed the boundary intact.
        assert "Traceback" in failure.remote_traceback
        assert "ValueError" in failure.remote_traceback
        # Reconstructing the swallowed error keeps the cell identity.
        error = failure.to_error()
        assert error.method == "TTFS"
        assert "after 3 attempts" in str(error)

    def test_holes_render_explicitly_in_reports(self, chaos_workload, monkeypatch):
        from repro.experiments import run_noise_sweep
        from repro.experiments.reporting import format_figure_series

        def doomed(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                raise ValueError("dead on arrival")
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", doomed)
        monkeypatch.setenv(CELL_RETRIES_ENV, "1")
        result = run_noise_sweep(
            chaos_config(), workload=chaos_workload, eval_size=10
        )
        curve = result.curve("TTFS")
        assert np.isnan(curve.accuracy_at(0.3))
        assert not np.isnan(curve.accuracy_at(0.0))
        # The only noisy level is the hole, so the noisy average is NaN --
        # but averaging over the finite levels still works.
        assert np.isnan(curve.average_accuracy())
        assert not np.isnan(curve.average_accuracy(exclude_clean=False))
        rendered = format_figure_series(result)
        assert "--" in rendered

    def test_failed_cells_are_not_persisted(self, chaos_workload, tmp_path, monkeypatch):
        # A hole must stay a miss: the next run with the bug fixed re-runs
        # exactly the failed cell, not the whole sweep.
        def doomed(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                raise ValueError("doomed")
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", doomed)
        store = ResultStore(str(tmp_path))
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        first = evaluate_plans(
            plans, store=store, workloads={ref: chaos_workload},
            retries=1, retry_backoff=0.001,
        )
        assert first.stats.failed_cells == 1
        assert len(list(store.fingerprints())) == len(plans) - 1

        monkeypatch.setattr(engine_module, "evaluate_plan", real_evaluate_plan)
        healed = evaluate_plans(
            plans, store=store, workloads={ref: chaos_workload},
            retries=1, retry_backoff=0.001,
        )
        assert healed.stats.store_hits == len(plans) - 1
        assert healed.stats.evaluated_cells == 1
        assert healed.stats.failed_cells == 0

    def test_errors_propagate_when_fault_tolerance_is_off(
        self, chaos_workload, monkeypatch
    ):
        def doomed(plan, workload):
            raise ValueError("boom")

        monkeypatch.setattr(engine_module, "evaluate_plan", doomed)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        with pytest.raises(CellEvaluationError):
            evaluate_plans(plans, workloads={ref: chaos_workload})


# ---------------------------------------------------------------------------
# Hangs: per-cell timeout
# ---------------------------------------------------------------------------
class TestHungCells:
    def test_hung_cell_trips_the_timeout(self, chaos_workload, monkeypatch):
        def hang(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                time.sleep(30.0)
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", hang)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        started = time.monotonic()
        evaluation = evaluate_plans(
            plans, workloads={ref: chaos_workload}, cell_timeout=0.3
        )
        assert time.monotonic() - started < 15.0
        assert evaluation.stats.failed_cells == 1
        (_, failure), = evaluation.failures
        assert "timed out" in failure.message

    def test_timeout_plus_retries_gives_hangs_a_second_chance(
        self, chaos_workload, monkeypatch
    ):
        hangs = {"count": 0}

        def hang_once(plan, workload):
            if plan.method_label == "TTFS" and plan.level == 0.3:
                hangs["count"] += 1
                if hangs["count"] == 1:
                    time.sleep(30.0)
            return real_evaluate_plan(plan, workload)

        monkeypatch.setattr(engine_module, "evaluate_plan", hang_once)
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        evaluation = evaluate_plans(
            plans, workloads={ref: chaos_workload},
            retries=1, cell_timeout=0.3, retry_backoff=0.001,
        )
        assert evaluation.stats.failed_cells == 0
        assert all(isinstance(r, EvaluationResult) for r in evaluation.results)


# ---------------------------------------------------------------------------
# Corrupt store documents degrade to misses (satellite verification)
# ---------------------------------------------------------------------------
class TestCorruptStore:
    def test_truncated_document_warns_with_the_file_name(
        self, chaos_workload, tmp_path
    ):
        store = ResultStore(str(tmp_path))
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload)
        evaluate_plans(plans, store=store, workloads={ref: chaos_workload})
        victim = store.path_for(next(iter(store.fingerprints())))
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "result": {"accur')  # truncated write

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.execution.store")
        handler = Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            rerun = evaluate_plans(plans, store=store, workloads={ref: chaos_workload})
        finally:
            logger.removeHandler(handler)
        assert rerun.stats.store_hits == len(plans) - 1
        assert rerun.stats.evaluated_cells == 1
        warned = [r.getMessage() for r in records]
        assert any(victim in message for message in warned)


# ---------------------------------------------------------------------------
# Knob resolution + failure-object plumbing
# ---------------------------------------------------------------------------
class TestFaultToleranceKnobs:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(CELL_RETRIES_ENV, raising=False)
        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        assert resolve_cell_retries() == 0
        assert resolve_cell_timeout() is None
        monkeypatch.setenv(CELL_RETRIES_ENV, "3")
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
        assert resolve_cell_retries() == 3
        assert resolve_cell_timeout() == 2.5
        assert resolve_cell_retries(1) == 1  # explicit beats env
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "0")
        assert resolve_cell_timeout() is None  # <= 0 disables
        monkeypatch.setenv(CELL_RETRIES_ENV, "many")
        with pytest.raises(ValueError, match=CELL_RETRIES_ENV):
            resolve_cell_retries()
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match=CELL_TIMEOUT_ENV):
            resolve_cell_timeout()

    def test_cell_failure_is_picklable(self):
        failure = CellFailure(
            dataset="mnist", method="TTFS", noise_kind="dead", level=0.3,
            message="boom", remote_traceback="Traceback ...", attempts=4,
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure

    def test_cell_error_pickle_keeps_traceback_and_attempts(self):
        error = CellEvaluationError(
            "mnist", "TTFS", "dead", 0.3, "boom",
            "Traceback (most recent call last): ...", 3,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.remote_traceback.startswith("Traceback")
        assert clone.attempts == 3
        assert "after 3 attempts" in str(clone)

    def test_thread_pool_also_recovers_results(self, chaos_workload):
        # Sanity: the fault-tolerant dispatch composes with the thread pool.
        config = chaos_config()
        ref, plans = _compile(config, chaos_workload, eval_size=8)
        executor = ThreadExecutor(2)
        try:
            evaluation = evaluate_plans(
                plans, executor=executor, workloads={ref: chaos_workload},
                retries=1, retry_backoff=0.001,
            )
        finally:
            executor.close()
        assert evaluation.stats.failed_cells == 0
        assert len(evaluation.results) == len(plans)
