"""Weight initialisers.

All initialisers take an explicit shape and generator so that model
construction is deterministic for a given seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import RngLike, default_rng


def _fan_in_out(shape: Sequence[int]) -> tuple:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes.

    Dense weights have shape ``(in, out)``; convolutional weights have shape
    ``(out_channels, in_channels, kh, kw)``.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def he_normal(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """He (Kaiming) normal initialisation, appropriate for ReLU networks."""
    generator = default_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return generator.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """Xavier/Glorot uniform initialisation."""
    generator = default_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros_init(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float32)
