"""Tests for the time-stepped simulator and its converted-network builder."""

import numpy as np
import pytest

from repro.coding import RateCoder, TTFSCoder
from repro.core import build_time_stepped_simulator
from repro.snn.neurons import IFNeuron
from repro.snn.simulator import SimulatorLayer, TimeSteppedSimulator
from repro.snn.spikes import SpikeTrainArray


def two_layer_simulator(num_steps=32, threshold=0.25):
    """A hand-built 2-layer spiking network with known weights."""
    w1 = np.array([[1.0, 0.5], [0.0, 1.0], [0.5, 0.0]])  # 3 inputs -> 2 hidden
    w2 = np.array([[1.0], [-1.0]])                        # 2 hidden -> 1 output
    layers = [
        SimulatorLayer(transform=lambda psc: psc @ w1, neuron=IFNeuron(threshold),
                       name="hidden"),
        SimulatorLayer(transform=lambda psc: psc @ w2, neuron=None, name="readout"),
    ]
    kernel = np.full(num_steps, 1.0 / num_steps)
    hidden_kernel = np.full(num_steps, threshold)
    return TimeSteppedSimulator(layers, num_steps, kernel, hidden_kernel), (w1, w2)


class TestTimeSteppedSimulator:
    def test_validates_layer_structure(self):
        layer = SimulatorLayer(transform=lambda x: x, neuron=IFNeuron(1.0))
        with pytest.raises(ValueError):
            TimeSteppedSimulator([layer], 8, np.ones(8))
        with pytest.raises(ValueError):
            TimeSteppedSimulator([], 8, np.ones(8))

    def test_kernel_shape_validated(self):
        layer = SimulatorLayer(transform=lambda x: x, neuron=None)
        with pytest.raises(ValueError):
            TimeSteppedSimulator([layer], 8, np.ones(4))

    def test_input_step_mismatch_rejected(self):
        simulator, _ = two_layer_simulator(num_steps=16)
        train = SpikeTrainArray.zeros(8, (2, 3))
        with pytest.raises(ValueError):
            simulator.run(train)

    def test_output_approximates_analog_network(self):
        # Quantisation error per hidden neuron is bounded by the threshold,
        # so the readout error is bounded by ~2 * threshold here.
        simulator, (w1, w2) = two_layer_simulator(num_steps=200, threshold=0.1)
        coder = RateCoder(num_steps=200)
        x = np.array([[0.8, 0.2, 0.4], [0.1, 0.9, 0.3]])
        record = simulator.run(coder.encode(x))
        analog = np.maximum(x @ w1, 0.0) @ w2
        assert np.allclose(record.output_potential, analog, atol=0.25)

    def test_spike_counts_recorded(self):
        simulator, _ = two_layer_simulator(num_steps=32)
        coder = RateCoder(num_steps=32)
        record = simulator.run(coder.encode(np.array([[0.5, 0.5, 0.5]])))
        assert record.spike_counts["hidden"] > 0
        assert record.total_spikes() == record.spike_counts["hidden"]
        assert record.num_steps == 32

    def test_record_spike_trains(self):
        simulator, _ = two_layer_simulator(num_steps=16)
        coder = RateCoder(num_steps=16)
        record = simulator.run(coder.encode(np.array([[1.0, 0.0, 0.0]])),
                               record_spikes=True)
        assert "hidden" in record.spike_trains
        assert record.spike_trains["hidden"].num_steps == 16

    def test_predictions_property(self):
        simulator, _ = two_layer_simulator(num_steps=16)
        coder = RateCoder(num_steps=16)
        record = simulator.run(coder.encode(np.array([[0.5, 0.1, 0.9]])))
        assert record.predictions.shape == (1,)


class TestBuildTimeSteppedSimulator:
    def test_rejects_unfaithful_coders(self, converted_mlp):
        # Burst coding's bounded-burst constraint lives in the encoder, not
        # in a neuron model: no faithful correspondence, so the bridge
        # refuses (per capability, as a TypeError subclass).
        from repro.coding import BurstCoder

        with pytest.raises(TypeError):
            build_time_stepped_simulator(
                converted_mlp, BurstCoder(num_steps=16),
                batch_input_shape=(4, 1, 28, 28),
            )

    def test_accepts_temporal_coders(self, converted_mlp):
        simulator = build_time_stepped_simulator(
            converted_mlp, TTFSCoder(num_steps=16),
            batch_input_shape=(4, 1, 28, 28),
        )
        # One full window per layer: 2 hidden interfaces + the input window.
        assert simulator.num_steps == 48
        assert simulator.input_steps == 16

    def test_agrees_with_analog_predictions(self, converted_mlp, mnist_split):
        coder = RateCoder(num_steps=64)
        simulator = build_time_stepped_simulator(
            converted_mlp, coder, batch_input_shape=(16, 1, 28, 28), threshold=0.1
        )
        x = mnist_split.test.x[:16]
        record = simulator.run(coder.encode(x / converted_mlp.input_scale))
        analog_pred = converted_mlp.forward_analog(x).argmax(axis=1)
        agreement = float((record.predictions == analog_pred).mean())
        assert agreement >= 0.8

    def test_agrees_with_transport_evaluation(self, converted_mlp, mnist_split):
        from repro.core import ActivationTransportSimulator

        coder = RateCoder(num_steps=64)
        x, y = mnist_split.test.x[:32], mnist_split.test.y[:32]
        stepped = build_time_stepped_simulator(
            converted_mlp, coder, batch_input_shape=(32, 1, 28, 28), threshold=0.1
        )
        stepped_acc = float(
            (stepped.run(coder.encode(x / converted_mlp.input_scale)).predictions == y).mean()
        )
        transport_acc = ActivationTransportSimulator(converted_mlp, coder).evaluate(
            x, y, rng=0
        ).accuracy
        assert abs(stepped_acc - transport_acc) <= 0.15

    def test_spiking_activity_present_in_every_hidden_layer(self, converted_mlp, mnist_split):
        coder = RateCoder(num_steps=32)
        simulator = build_time_stepped_simulator(
            converted_mlp, coder, batch_input_shape=(8, 1, 28, 28), threshold=0.1
        )
        record = simulator.run(
            coder.encode(mnist_split.test.x[:8] / converted_mlp.input_scale)
        )
        hidden_counts = [count for name, count in record.spike_counts.items()
                         if not name.endswith(str(len(converted_mlp.segments) - 1))]
        assert all(count > 0 for count in hidden_counts)
