"""Loss functions for DNN training."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy on integer labels.

    ``forward`` returns the mean loss over the batch; ``backward`` returns the
    gradient with respect to the logits (already averaged over the batch).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must lie in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: Tuple[np.ndarray, np.ndarray] = None  # type: ignore[assignment]

    def _target_distribution(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        one_hot = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
        one_hot[np.arange(labels.shape[0]), labels] = 1.0
        if self.label_smoothing > 0:
            one_hot = (
                one_hot * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        return one_hot

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` (N, K) against integer ``labels`` (N,)."""
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"labels must be 1-D with length {logits.shape[0]}, got {labels.shape}"
            )
        probs = softmax(logits.astype(np.float64))
        targets = self._target_distribution(labels, logits.shape[1])
        self._cache = (probs, targets)
        eps = 1e-12
        loss = -(targets * np.log(probs + eps)).sum(axis=1).mean()
        return float(loss)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets = self._cache
        return ((probs - targets) / probs.shape[0]).astype(np.float32)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error, used in a couple of regression-style unit tests."""

    def __init__(self):
        self._cache: Tuple[np.ndarray, np.ndarray] = None  # type: ignore[assignment]

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean of squared differences."""
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        return (2.0 * (predictions - targets) / predictions.size).astype(np.float32)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
