#!/usr/bin/env python
"""Jitter-robustness study and TTAS burst-duration sweep (paper Figs. 3, 6, 8).

Analog neuromorphic circuits also shift spike times (temporal variability).
This example measures how the coding schemes react to Gaussian spike jitter
and how the TTAS burst duration t_a trades spikes for jitter robustness --
the "time-to-average-spike" effect.

Run with::

    python examples/jitter_robustness_study.py
"""

from __future__ import annotations

from repro.experiments.config import BENCH_SCALE, MethodSpec, SweepConfig
from repro.experiments.reporting import format_figure_series, render_markdown_table
from repro.experiments.runner import run_noise_sweep
from repro.experiments.workloads import prepare_workload


def main() -> None:
    print("Preparing workload (synthetic CIFAR-10, scaled VGG)...")
    workload = prepare_workload("cifar10", scale=BENCH_SCALE, seed=0)
    print(f"analog DNN accuracy: {workload.dnn_accuracy * 100:.1f}%")

    # Part 1: coding schemes under jitter (Figs. 3 and 8).
    methods = (
        MethodSpec(coding="rate"),
        MethodSpec(coding="phase"),
        MethodSpec(coding="burst"),
        MethodSpec(coding="ttfs"),
        MethodSpec(coding="ttas", target_duration=10),
    )
    config = SweepConfig(
        dataset="cifar10", methods=methods, noise_kind="jitter",
        levels=(0.0, 1.0, 2.0, 3.0, 4.0), scale=BENCH_SCALE, seed=0,
    )
    result = run_noise_sweep(config, workload=workload, eval_size=32)
    print()
    print(format_figure_series(result, "Jitter robustness by coding scheme"))

    # Part 2: TTAS burst-duration sweep at a fixed jitter level (Fig. 6).
    print()
    print("TTAS burst-duration sweep at jitter sigma = 2.0:")
    duration_methods = tuple(
        MethodSpec(coding="ttas", target_duration=d) for d in (1, 2, 3, 5, 10)
    )
    duration_config = SweepConfig(
        dataset="cifar10", methods=duration_methods, noise_kind="jitter",
        levels=(0.0, 2.0), scale=BENCH_SCALE, seed=0,
    )
    duration_result = run_noise_sweep(duration_config, workload=workload, eval_size=32)
    rows = []
    for curve in duration_result.curves:
        rows.append([
            curve.label,
            f"{curve.accuracy_at(0.0) * 100:5.1f}%",
            f"{curve.accuracy_at(2.0) * 100:5.1f}%",
            f"{curve.spikes_per_sample[0]:,.0f}",
        ])
    print(render_markdown_table(
        ["method", "clean", "jitter sigma=2", "spikes/sample"], rows
    ))
    print()
    print("Longer bursts average out the per-spike jitter (time-to-AVERAGE-spike),")
    print("at the cost of proportionally more spikes -- the paper's Fig. 6 trade-off.")


if __name__ == "__main__":
    main()
