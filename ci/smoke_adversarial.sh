#!/usr/bin/env bash
# Adversarial attack-engine smoke run.
#
# End-to-end `adv-delete` figure (worst-case greedy search plus the matched
# random baseline) with every attack cell split into 2 sample shards across
# a 2-worker process pool + result store: the first run searches and
# persists 4 attack cells (1 coding x 2 budgets x {greedy, random}) and
# must leave no shard documents behind.  The second run repeats the figure
# unsharded on the serial executor and must be served entirely from the
# store -- a sentinel mtime check proves zero cells were re-searched.  A
# third run transfer-evaluates the budget-2 attacks on the faithful
# timestep simulator, which must mint exactly 2 *new* cells (the evaluator
# is part of the attack fingerprint).  Finally `store gc` must run clean.
#
# Run from the repository root: bash ci/smoke_adversarial.sh
set -euo pipefail

export PYTHONPATH="${PYTHONPATH:-src}"
STORE="${REPRO_SMOKE_STORE:-/tmp/repro-ci-adversarial-store}"
rm -rf "$STORE"

python -m repro figure --name adv-delete --dataset mnist \
  --scale test --eval-size 4 --budgets 0 2 --methods TTFS \
  --shards 2 --executor process --max-workers 2 --result-store "$STORE"
test "$(find "$STORE/cells" -name '*.json' | wc -l)" -eq 4
test "$(find "$STORE/shards" -name '*.json' 2>/dev/null | wc -l)" -eq 0
touch "$STORE/sentinel"
python -m repro figure --name adv-delete --dataset mnist \
  --scale test --eval-size 4 --budgets 0 2 --methods TTFS \
  --executor serial --result-store "$STORE"
test "$(find "$STORE/cells" -name '*.json' -newer "$STORE/sentinel" | wc -l)" -eq 0
python -m repro figure --name adv-delete --dataset mnist \
  --scale test --eval-size 4 --budgets 2 --methods TTFS \
  --simulator timestep --executor serial --result-store "$STORE"
test "$(find "$STORE/cells" -name '*.json' | wc -l)" -eq 6
GC_REPORT="$(python -m repro store gc --result-store "$STORE")"
echo "$GC_REPORT"
grep -q "collected          : 0" <<< "$GC_REPORT"
echo "adversarial smoke: 4 attack cells sharded 2-way, resume re-searched 0," \
  "2 timestep transfer cells, store gc clean"
