"""Time-stepped SNN simulator.

This is the faithful (and therefore slow) evaluation path: every layer is a
population of spiking neurons advanced step by step, spikes travel between
layers weighted by the coder's PSC kernel, and the output layer accumulates
membrane potential that is read out as the classification score.

It exists for two reasons:

* it demonstrates that the converted networks really are spiking networks
  (IF / TTFS / IFB dynamics, thresholds, resets -- Eqs. 1-4 of the paper),
* it provides ground truth against which the fast activation-transport
  evaluator (:mod:`repro.core.transport`) is validated in integration tests.

Large figure sweeps use the transport evaluator instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.snn.neurons import NeuronState, SpikingNeuron
from repro.snn.spikes import SpikeTrain, SpikeTrainArray
from repro.utils.validation import check_positive

#: A synaptic transform maps an instantaneous post-synaptic-current vector of
#: the previous layer to the input current of this layer (i.e. applies
#: ``W x + b_step`` for dense layers, the convolution for conv layers, ...).
SynapticTransform = Callable[[np.ndarray], np.ndarray]


@dataclass
class SimulatorLayer:
    """One spiking layer of the time-stepped simulator.

    Attributes
    ----------
    transform:
        Callable applying the (already converted and scaled) synaptic weights
        to a batch of instantaneous PSC values.
    neuron:
        The spiking neuron model of this layer, or ``None`` for the readout
        layer (which only accumulates membrane potential).
    name:
        Layer name used in simulation records.
    step_bias:
        Optional constant current injected every step (per-neuron bias spread
        over the time window).
    """

    transform: SynapticTransform
    neuron: Optional[SpikingNeuron]
    name: str = "layer"
    step_bias: Optional[np.ndarray] = None


@dataclass
class SimulationRecord:
    """Outcome of a time-stepped simulation.

    Attributes
    ----------
    output_potential:
        Accumulated membrane potential of the readout layer, shape
        ``(batch, classes)``; argmax gives the prediction.
    spike_counts:
        Total number of spikes emitted per layer (keyed by layer name).
    spike_trains:
        Optional per-layer spike trains (only kept when ``record_spikes``).
    num_steps:
        Length of the simulated window.
    """

    output_potential: np.ndarray
    spike_counts: Dict[str, int] = field(default_factory=dict)
    spike_trains: Dict[str, SpikeTrainArray] = field(default_factory=dict)
    num_steps: int = 0

    @property
    def predictions(self) -> np.ndarray:
        """Predicted class indices."""
        return self.output_potential.argmax(axis=1)

    def total_spikes(self) -> int:
        """Total spikes across all recorded layers."""
        return int(sum(self.spike_counts.values()))


class TimeSteppedSimulator:
    """Run a stack of spiking layers over a discrete time window.

    Parameters
    ----------
    layers:
        Hidden spiking layers followed by exactly one readout layer (a layer
        whose ``neuron`` is None).
    num_steps:
        Length of the simulation window ``T``.
    input_kernel / hidden_kernel:
        Per-step PSC weights (length ``num_steps``) applied to input spikes
        and to hidden-layer spikes respectively.  They come from the coder's
        :class:`repro.snn.kernels.PSCKernel`.
    readout_mode:
        ``"batched"`` (default) accumulates the readout layer's input PSC
        over the whole window and applies its synaptic transform **once** per
        run -- one GEMM per batch instead of one per time step.  This is
        exact whenever the readout transform is linear (true for every
        transform built by :mod:`repro.core.timestep`, where the bias is
        injected separately via ``step_bias``).  ``"per-step"`` keeps the
        original step-by-step evaluation for non-linear custom transforms.
    """

    READOUT_MODES = ("batched", "per-step")

    def __init__(
        self,
        layers: Sequence[SimulatorLayer],
        num_steps: int,
        input_kernel: np.ndarray,
        hidden_kernel: Optional[np.ndarray] = None,
        readout_mode: str = "batched",
    ):
        check_positive("num_steps", num_steps)
        if not layers:
            raise ValueError("the simulator needs at least one layer")
        if layers[-1].neuron is not None:
            raise ValueError("the last layer must be a readout layer (neuron=None)")
        if readout_mode not in self.READOUT_MODES:
            raise ValueError(
                f"readout_mode must be one of {self.READOUT_MODES}, "
                f"got {readout_mode!r}"
            )
        self.layers = list(layers)
        self.num_steps = int(num_steps)
        self.readout_mode = readout_mode
        self.input_kernel = self._check_kernel(input_kernel)
        self.hidden_kernel = (
            self._check_kernel(hidden_kernel)
            if hidden_kernel is not None
            else self.input_kernel
        )

    def _check_kernel(self, kernel: np.ndarray) -> np.ndarray:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.shape != (self.num_steps,):
            raise ValueError(
                f"kernel must have shape ({self.num_steps},), got {kernel.shape}"
            )
        return kernel

    def run(
        self,
        input_spikes: SpikeTrain,
        record_spikes: bool = False,
    ) -> SimulationRecord:
        """Simulate the network on a batch of encoded inputs.

        Parameters
        ----------
        input_spikes:
            Spike trains of the input population covering
            ``(T, batch, features...)`` as produced by a coder's ``encode``
            (either backend; the simulator is inherently dense-stepped and
            converts events up front).
        record_spikes:
            Keep the full spike trains of every hidden layer in the record
            (memory heavy; meant for small validation runs and plots).
        """
        input_spikes = input_spikes.to_dense()
        if input_spikes.num_steps != self.num_steps:
            raise ValueError(
                f"input spike train has {input_spikes.num_steps} steps, "
                f"simulator expects {self.num_steps}"
            )
        batch_shape = input_spikes.population_shape
        if not batch_shape:
            raise ValueError("input spike train must include a batch dimension")

        states: List[Optional[NeuronState]] = []
        hidden_counts: List[Optional[np.ndarray]] = []
        output_potential: Optional[np.ndarray] = None
        readout_psc: Optional[np.ndarray] = None
        readout_steps = 0
        batched_readout = self.readout_mode == "batched"
        spike_counts: Dict[str, int] = {layer.name: 0 for layer in self.layers}
        recorded: Dict[str, List[np.ndarray]] = {}

        for step in range(self.num_steps):
            current_psc = (
                input_spikes.counts[step].astype(np.float64)
                * self.input_kernel[step]
            )
            for index, layer in enumerate(self.layers):
                if layer.neuron is None and batched_readout:
                    # The readout transform is linear, so the per-step
                    # weighted sums collapse into one GEMM after the loop.
                    if readout_psc is None:
                        readout_psc = np.zeros_like(current_psc)
                    readout_psc += current_psc
                    readout_steps += 1
                    current_psc = None
                    break
                drive = layer.transform(current_psc)
                if layer.step_bias is not None:
                    drive = drive + layer.step_bias
                if layer.neuron is None:
                    if output_potential is None:
                        output_potential = np.zeros_like(drive)
                    output_potential += drive
                    current_psc = None
                    break
                if index >= len(states):
                    states.append(layer.neuron.init_state(drive.shape))
                    hidden_counts.append(np.zeros(drive.shape, dtype=np.int64))
                spikes = layer.neuron.step(states[index], drive)
                spike_counts[layer.name] += int(spikes.sum())
                hidden_counts[index] += spikes
                if record_spikes:
                    recorded.setdefault(layer.name, []).append(spikes.copy())
                current_psc = spikes.astype(np.float64) * self.hidden_kernel[step]

        if batched_readout and readout_psc is not None:
            readout = self.layers[-1]
            output_potential = np.asarray(readout.transform(readout_psc))
            if readout.step_bias is not None:
                output_potential = output_potential + readout_steps * readout.step_bias

        if output_potential is None:
            raise RuntimeError("simulation finished without reaching the readout layer")

        record = SimulationRecord(
            output_potential=output_potential,
            spike_counts=spike_counts,
            num_steps=self.num_steps,
        )
        if record_spikes:
            record.spike_trains = {
                name: SpikeTrainArray(np.stack(steps, axis=0), copy=False)
                for name, steps in recorded.items()
            }
        return record
