"""Spike-train containers: dense and event-driven backends.

Two interchangeable representations of the spike trains of a neuron
population over a finite time window are provided:

* :class:`SpikeTrainArray` -- a dense integer array of shape
  ``(T, *population_shape)`` where entry ``[t, ...]`` holds the number of
  spikes the neuron emits at step ``t``.  Every operation is a vectorised
  numpy expression over the full ``T x N`` grid, which is simple and fast for
  *dense* codes (rate, phase, burst).
* :class:`SpikeEvents` -- an event list ``(times, neuron_indices, counts)``
  holding one entry per occupied ``(step, neuron)`` slot.  Temporal codes
  (TTFS emits at most one spike per neuron, TTAS at most ``t_a``) leave the
  dense grid >=95 % zeros, so deletion, jitter and kernel decoding cost
  O(spikes) on events instead of O(T*N) on the grid -- the same economy that
  makes event-driven neuromorphic hardware efficient.

Both classes expose the same public surface (``total_spikes``,
``first_spike_times``, ``weighted_sum``, ``delete_spikes``, ``jitter_spikes``,
``merge``, ...), so coders, noise models and the transport evaluator operate
on either backend without branching.  Lossless conversion is available through
``to_dense()`` / ``to_events()`` on both classes.

Trains are immutable by convention: transforms return new containers and never
modify their input, which lets zero-noise fast paths share buffers through
:meth:`view` instead of copying.

Backend selection is resolved by :func:`resolve_spike_backend` in this order:
explicit request > :func:`set_spike_backend` process override >
``REPRO_SPIKE_BACKEND`` environment variable > the coder's preference.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import RngLike, default_rng
from repro.utils.validation import check_positive

#: Name of the dense (T, *population) array backend.
DENSE_BACKEND = "dense"
#: Name of the event-list backend.
EVENTS_BACKEND = "events"
#: All valid backend names.
SPIKE_BACKENDS = (DENSE_BACKEND, EVENTS_BACKEND)

#: Environment variable overriding the per-coder backend preference.
SPIKE_BACKEND_ENV = "REPRO_SPIKE_BACKEND"

_BACKEND_OVERRIDE: Optional[str] = None


def _validate_backend(name: str) -> str:
    key = str(name).strip().lower()
    if key not in SPIKE_BACKENDS:
        raise ValueError(
            f"unknown spike backend {name!r}; available: {list(SPIKE_BACKENDS)}"
        )
    return key


def _broadcast_population_mask(
    mask: np.ndarray, population_shape: Tuple[int, ...]
) -> np.ndarray:
    """Validate that a boolean ``mask`` broadcasts over ``population_shape``.

    Fault masks are usually drawn over the trailing (feature) axes only, so
    the same physical neurons are hit for every element of a leading batch
    axis; numpy broadcasting gives exactly that alignment.
    """
    mask = np.asarray(mask, dtype=bool)
    try:
        if np.broadcast_shapes(tuple(population_shape), mask.shape) != tuple(
            population_shape
        ):
            raise ValueError
    except ValueError:
        raise ValueError(
            f"mask of shape {mask.shape} does not broadcast over population "
            f"{tuple(population_shape)}"
        ) from None
    return mask


def _resolve_window(
    window: Optional[Tuple[int, Optional[int]]], num_steps: int
) -> Tuple[int, int]:
    """Clip a ``(start, stop)`` step window to ``[0, num_steps]``.

    ``window=None`` means the whole train; ``stop=None`` means "until the
    end" (mirrors the neuron fire-window convention).
    """
    if window is None:
        return 0, num_steps
    start, stop = window
    start = max(int(start), 0)
    stop = num_steps if stop is None else min(int(stop), num_steps)
    return start, max(stop, start)


def set_spike_backend(backend: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide spike-backend override.

    The override sits between an explicit per-call request and the
    ``REPRO_SPIKE_BACKEND`` environment variable.
    """
    global _BACKEND_OVERRIDE
    _BACKEND_OVERRIDE = None if backend is None else _validate_backend(backend)


def get_spike_backend() -> Optional[str]:
    """The process-wide backend override, or ``None`` when not set."""
    return _BACKEND_OVERRIDE


def resolve_spike_backend(
    requested: Optional[str] = None, preferred: str = DENSE_BACKEND
) -> str:
    """Resolve which spike backend to use.

    Precedence: ``requested`` argument, then the :func:`set_spike_backend`
    override, then the ``REPRO_SPIKE_BACKEND`` environment variable, then the
    caller's ``preferred`` default (normally the coder's
    ``preferred_backend``).
    """
    if requested is not None:
        return _validate_backend(requested)
    if _BACKEND_OVERRIDE is not None:
        return _BACKEND_OVERRIDE
    env = os.environ.get(SPIKE_BACKEND_ENV, "").strip()
    if env:
        return _validate_backend(env)
    return _validate_backend(preferred)


class SpikeTrainArray:
    """Dense spike-count representation of a population over a time window.

    Parameters
    ----------
    counts:
        Integer array of shape ``(T, *population_shape)`` with per-step spike
        counts.  Copied defensively unless ``copy=False``.
    copy:
        Skip the defensive copy (used internally by transforms that already
        own the buffer).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: np.ndarray, copy: bool = True):
        counts = np.asarray(counts)
        if counts.ndim < 2:
            raise ValueError(
                f"spike counts need shape (T, *population), got {counts.shape}"
            )
        if counts.dtype.kind not in "iu":
            if not np.all(counts == np.round(counts)):
                raise ValueError("spike counts must be integers")
            counts = counts.astype(np.int16)
        elif copy:
            counts = counts.copy()
        if np.any(counts < 0):
            raise ValueError("spike counts cannot be negative")
        self.counts = counts.astype(np.int16, copy=False)

    # -- constructors --------------------------------------------------------
    @classmethod
    def zeros(cls, num_steps: int, population_shape: Tuple[int, ...]) -> "SpikeTrainArray":
        """An empty spike train of ``num_steps`` steps for the given population."""
        check_positive("num_steps", num_steps)
        shape = (int(num_steps),) + tuple(int(s) for s in population_shape)
        return cls(np.zeros(shape, dtype=np.int16), copy=False)

    @classmethod
    def from_spike_times(
        cls,
        times: Iterable[int],
        neuron_indices: Iterable[int],
        num_steps: int,
        num_neurons: int,
    ) -> "SpikeTrainArray":
        """Build a single-population (1-D) train from parallel time/index lists."""
        train = cls.zeros(num_steps, (num_neurons,))
        times = np.asarray(list(times), dtype=np.int64)
        neuron_indices = np.asarray(list(neuron_indices), dtype=np.int64)
        if times.shape != neuron_indices.shape:
            raise ValueError("times and neuron_indices must have the same length")
        if times.size:
            if times.min() < 0 or times.max() >= num_steps:
                raise ValueError(f"spike times must lie in [0, {num_steps})")
            if neuron_indices.min() < 0 or neuron_indices.max() >= num_neurons:
                raise ValueError(f"neuron indices must lie in [0, {num_neurons})")
            np.add.at(train.counts, (times, neuron_indices), 1)
        return train

    # -- basic properties ----------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Length of the time window ``T``."""
        return int(self.counts.shape[0])

    @property
    def population_shape(self) -> Tuple[int, ...]:
        """Shape of the neuron population (everything but the time axis)."""
        return tuple(self.counts.shape[1:])

    @property
    def num_neurons(self) -> int:
        """Total number of neurons in the population."""
        return int(np.prod(self.population_shape)) if self.population_shape else 0

    def total_spikes(self) -> int:
        """Total number of spikes in the window."""
        return int(self.counts.sum())

    def spikes_per_neuron(self) -> np.ndarray:
        """Per-neuron spike counts (shape ``population_shape``)."""
        return self.counts.sum(axis=0)

    def firing_rates(self) -> np.ndarray:
        """Per-neuron firing rate (spikes per time step)."""
        return self.counts.sum(axis=0) / float(self.num_steps)

    def occupied_slots(self) -> int:
        """Number of ``(step, neuron)`` slots that carry at least one spike."""
        return int(np.count_nonzero(self.counts))

    def first_spike_times(self, no_spike_value: Optional[int] = None) -> np.ndarray:
        """Per-neuron time of the first spike.

        Neurons that never fire get ``no_spike_value`` (default: ``num_steps``,
        i.e. one step past the window).
        """
        fired = self.counts > 0
        has_spike = fired.any(axis=0)
        first = np.argmax(fired, axis=0)
        fill = self.num_steps if no_spike_value is None else int(no_spike_value)
        return np.where(has_spike, first, fill)

    def copy(self) -> "SpikeTrainArray":
        """Deep copy."""
        return SpikeTrainArray(self.counts.copy(), copy=False)

    def view(self) -> "SpikeTrainArray":
        """New wrapper sharing this train's buffer (trains are immutable)."""
        return SpikeTrainArray(self.counts, copy=False)

    # -- backend conversion --------------------------------------------------
    def to_dense(self) -> "SpikeTrainArray":
        """This train (already dense)."""
        return self

    def to_events(self) -> "SpikeEvents":
        """Lossless conversion to the event-driven backend."""
        return SpikeEvents.from_dense(self)

    # -- window queries ------------------------------------------------------
    def step_support(self) -> Tuple[int, int]:
        """Smallest step window ``[lo, hi)`` containing every spike.

        Returns ``(0, 0)`` for an empty train.  The window scheduler uses
        this to materialise only the occupied slice of the time axis.
        """
        occupied = self.counts.reshape(self.num_steps, -1).any(axis=1)
        if not occupied.any():
            return 0, 0
        lo = int(np.argmax(occupied))
        hi = self.num_steps - int(np.argmax(occupied[::-1]))
        return lo, hi

    def window_counts(
        self, start: int, stop: Optional[int] = None
    ) -> np.ndarray:
        """Dense per-step counts for steps ``[start, stop)`` only.

        Returns an array of shape ``(stop - start, *population_shape)``; a
        view of the underlying buffer on this backend -- treat it as
        read-only.  ``stop=None`` means "until the end".
        """
        start, stop = _resolve_window((start, stop), self.num_steps)
        return self.counts[start:stop]

    def slice_window(self, start: int, stop: Optional[int] = None) -> "SpikeTrainArray":
        """A new train holding only steps ``[start, stop)``, re-based to 0.

        The window must be non-empty after clipping to ``[0, num_steps]``.
        """
        start, stop = _resolve_window((start, stop), self.num_steps)
        if start >= stop:
            raise ValueError(
                f"slice_window needs a non-empty window, got [{start}, {stop})"
            )
        return SpikeTrainArray(self.counts[start:stop])

    # -- transformations -----------------------------------------------------
    def weighted_sum(self, weights_per_step: np.ndarray) -> np.ndarray:
        """Sum of per-spike weights for every neuron.

        ``weights_per_step`` has shape ``(T,)`` and gives the post-synaptic
        contribution of a spike arriving at each step; the result has the
        population shape.  This is the decoding primitive every kernel-based
        coder uses.
        """
        weights_per_step = np.asarray(weights_per_step)
        if weights_per_step.shape != (self.num_steps,):
            raise ValueError(
                f"weights_per_step must have shape ({self.num_steps},), "
                f"got {weights_per_step.shape}"
            )
        # einsum avoids materialising the full weighted (T, *population) array.
        flat = self.counts.reshape(self.num_steps, -1)
        result = np.einsum(
            "t,tn->n",
            weights_per_step.astype(np.float32, copy=False),
            flat.astype(np.float32),
        )
        return result.reshape(self.population_shape).astype(np.float64)

    def delete_spikes(self, probability: float, rng: RngLike = None) -> "SpikeTrainArray":
        """Return a train with every spike independently deleted with ``probability``.

        Implemented as binomial thinning of the count array, which is exact
        for counts > 1 as well.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        if probability == 0.0:
            return self.view()
        generator = default_rng(rng)
        if self.counts.max(initial=0) <= 1:
            # Fast path for binary trains: one uniform draw per slot.
            keep = generator.random(self.counts.shape, dtype=np.float32) >= probability
            survivors = self.counts * keep
        else:
            survivors = generator.binomial(self.counts, 1.0 - probability)
        return SpikeTrainArray(survivors.astype(np.int16), copy=False)

    def jitter_spikes(
        self,
        sigma: float,
        rng: RngLike = None,
        mode: str = "clip",
    ) -> "SpikeTrainArray":
        """Return a train with every spike time shifted by quantised Gaussian noise.

        Each individual spike is moved by ``round(N(0, sigma))`` steps.  Spikes
        pushed outside the window are clamped to the window edge when
        ``mode="clip"`` (default) or removed when ``mode="drop"``.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if mode not in ("clip", "drop"):
            raise ValueError(f"mode must be 'clip' or 'drop', got {mode!r}")
        if sigma == 0.0:
            return self.view()
        generator = default_rng(rng)
        flat = self.counts.reshape(self.num_steps, -1)
        times, neurons = np.nonzero(flat)
        if times.size == 0:
            return self.view()
        multiplicity = flat[times, neurons].astype(np.int64)
        times = np.repeat(times, multiplicity)
        neurons = np.repeat(neurons, multiplicity)
        shifts = np.rint(generator.normal(0.0, sigma, size=times.shape)).astype(np.int64)
        shifted = times + shifts
        if mode == "clip":
            shifted = np.clip(shifted, 0, self.num_steps - 1)
            keep = slice(None)
        else:
            keep = (shifted >= 0) & (shifted < self.num_steps)
        num_neurons = flat.shape[1]
        linear = shifted[keep] * num_neurons + neurons[keep]
        new_flat = np.bincount(linear, minlength=self.num_steps * num_neurons)
        new_flat = new_flat.reshape(self.num_steps, num_neurons).astype(np.int16)
        return SpikeTrainArray(new_flat.reshape(self.counts.shape), copy=False)

    def mask_neurons(self, keep: np.ndarray) -> "SpikeTrainArray":
        """Return a train with all spikes of masked-out neurons removed.

        ``keep`` is a boolean array broadcast over the population (typically
        drawn over the feature axes only, so a leading batch axis shares the
        mask); neurons where it is ``False`` are silenced at every step --
        the stuck-at-silent / dead-neuron hardware fault.
        """
        keep = _broadcast_population_mask(keep, self.population_shape)
        if keep.all():
            return self.view()
        return SpikeTrainArray(
            np.where(keep, self.counts, np.int16(0)), copy=False
        )

    def force_firing(
        self,
        mask: np.ndarray,
        window: Optional[Tuple[int, Optional[int]]] = None,
    ) -> "SpikeTrainArray":
        """Return a train where masked neurons emit exactly one spike per step.

        Within ``window`` (default: the whole train) every neuron where
        ``mask`` is ``True`` has its count replaced by 1 -- the stuck-at-fire
        hardware fault.  Steps outside the window keep their original spikes.
        """
        mask = _broadcast_population_mask(mask, self.population_shape)
        start, stop = _resolve_window(window, self.num_steps)
        if not mask.any() or start >= stop:
            return self.view()
        out = self.counts.copy()
        out[start:stop] = np.where(mask, np.int16(1), out[start:stop])
        return SpikeTrainArray(out, copy=False)

    def drop_window(self, start: int, stop: int) -> "SpikeTrainArray":
        """Return a train with every spike in steps ``[start, stop)`` removed.

        The correlated (burst-error) counterpart of :meth:`delete_spikes`:
        spikes are dropped together in one contiguous time window instead of
        independently.
        """
        start, stop = _resolve_window((start, stop), self.num_steps)
        if start >= stop:
            return self.view()
        out = self.counts.copy()
        out[start:stop] = 0
        return SpikeTrainArray(out, copy=False)

    def merge(self, other: "SpikeTrain") -> "SpikeTrainArray":
        """Superpose two spike trains of identical shape."""
        if isinstance(other, SpikeEvents):
            other = other.to_dense()
        if self.counts.shape != other.counts.shape:
            raise ValueError(
                f"cannot merge spike trains of shapes {self.counts.shape} "
                f"and {other.counts.shape}"
            )
        return SpikeTrainArray(self.counts + other.counts, copy=False)

    # -- dunder helpers --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpikeEvents):
            return other == self
        if not isinstance(other, SpikeTrainArray):
            return NotImplemented
        return bool(np.array_equal(self.counts, other.counts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpikeTrainArray(T={self.num_steps}, population={self.population_shape}, "
            f"spikes={self.total_spikes()})"
        )


class SpikeEvents:
    """Event-driven spike-train representation.

    Stores the train as three parallel arrays: ``times`` (step index),
    ``neuron_indices`` (flat index into the population) and ``event_counts``
    (spike multiplicity).  Events are brought into *canonical form* -- sorted
    by ``(time, neuron)`` with duplicate slots coalesced -- lazily, only when
    an operation needs it (equality, dense conversion, slot counting): the
    hot transforms (thinning, jitter shifts, kernel scatter-decode) are
    order-independent, so deferring the O(E log E) sort keeps them strictly
    O(events).

    All transforms cost O(events) instead of the dense backend's O(T*N),
    which is what makes this the preferred backend for sparse temporal codes
    (TTFS/TTAS).

    Parameters
    ----------
    times / neuron_indices / counts:
        Parallel event arrays, in any order (duplicate slots allowed; they
        are coalesced on canonicalisation).  ``counts`` may be omitted
        (defaults to one spike per event); zero-count events are dropped
        at construction.
    num_steps:
        Window length ``T``.
    population_shape:
        Shape of the neuron population; ``neuron_indices`` index its
        flattened (C-order) layout.
    """

    __slots__ = ("times", "neuron_indices", "event_counts",
                 "_num_steps", "_population_shape", "_canonical", "_dense_cache")

    def __init__(
        self,
        times: np.ndarray,
        neuron_indices: np.ndarray,
        counts: Optional[np.ndarray],
        num_steps: int,
        population_shape: Tuple[int, ...],
        _canonical: bool = False,
    ):
        check_positive("num_steps", num_steps)
        self._num_steps = int(num_steps)
        self._population_shape = tuple(int(s) for s in population_shape)
        if not self._population_shape:
            raise ValueError("population_shape must have at least one dimension")

        times = np.asarray(times, dtype=np.int64).reshape(-1)
        neuron_indices = np.asarray(neuron_indices, dtype=np.int64).reshape(-1)
        if counts is None:
            counts = np.ones(times.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts)
            if counts.dtype.kind not in "iu":
                if not np.all(counts == np.round(counts)):
                    raise ValueError("spike counts must be integers")
            counts = counts.astype(np.int64).reshape(-1)
        if not (times.shape == neuron_indices.shape == counts.shape):
            raise ValueError(
                "times, neuron_indices and counts must have the same length"
            )
        if times.size:
            if times.min() < 0 or times.max() >= self._num_steps:
                raise ValueError(f"spike times must lie in [0, {self._num_steps})")
            if neuron_indices.min() < 0 or neuron_indices.max() >= self.num_neurons:
                raise ValueError(
                    f"neuron indices must lie in [0, {self.num_neurons})"
                )
            if counts.min() < 0:
                raise ValueError("spike counts cannot be negative")
            if counts.min() == 0:
                # Drop zero-count events eagerly: the order-independent fast
                # paths (jitter, first_spike_times) trust every event to
                # carry at least one spike.
                nonzero = counts > 0
                times = times[nonzero]
                neuron_indices = neuron_indices[nonzero]
                counts = counts[nonzero]
        self.times = times
        self.neuron_indices = neuron_indices
        self.event_counts = counts
        self._canonical = bool(_canonical) or times.size == 0
        self._dense_cache: Optional[np.ndarray] = None

    def _ensure_canonical(self) -> None:
        """Bring the event arrays into canonical form (idempotent).

        The train's semantic content is unchanged, so this is safe even on
        buffer-sharing views (the view re-binds its own references only).
        """
        if not self._canonical:
            self.times, self.neuron_indices, self.event_counts = self._canonicalise(
                self.times, self.neuron_indices, self.event_counts, self.num_neurons
            )
            self._canonical = True

    @staticmethod
    def _canonicalise(
        times: np.ndarray,
        neuron_indices: np.ndarray,
        counts: np.ndarray,
        num_neurons: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sort events by (time, neuron) and coalesce duplicate slots."""
        if times.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        linear = times * num_neurons + neuron_indices
        order = np.argsort(linear, kind="stable")
        linear = linear[order]
        counts = counts[order]
        boundaries = np.empty(linear.shape, dtype=bool)
        boundaries[0] = True
        np.not_equal(linear[1:], linear[:-1], out=boundaries[1:])
        if not boundaries.all():
            group = np.cumsum(boundaries) - 1
            counts = np.bincount(group, weights=counts).astype(np.int64)
            linear = linear[boundaries]
        return linear // num_neurons, linear % num_neurons, counts

    # -- constructors --------------------------------------------------------
    @classmethod
    def zeros(cls, num_steps: int, population_shape: Tuple[int, ...]) -> "SpikeEvents":
        """An empty event train of ``num_steps`` steps for the given population."""
        empty = np.empty(0, dtype=np.int64)
        return cls(empty, empty, None, num_steps, population_shape, _canonical=True)

    @classmethod
    def from_dense(cls, train: Union[SpikeTrainArray, np.ndarray]) -> "SpikeEvents":
        """Lossless conversion from the dense backend."""
        if not isinstance(train, SpikeTrainArray):
            train = SpikeTrainArray(train)
        flat = train.counts.reshape(train.num_steps, -1)
        times, neurons = np.nonzero(flat)
        counts = flat[times, neurons].astype(np.int64)
        # np.nonzero walks the array in C order, so the events arrive already
        # sorted by (time, neuron) with unique slots: canonical by design.
        return cls(
            times.astype(np.int64), neurons.astype(np.int64), counts,
            train.num_steps, train.population_shape, _canonical=True,
        )

    @classmethod
    def from_spike_times(
        cls,
        times: Iterable[int],
        neuron_indices: Iterable[int],
        num_steps: int,
        num_neurons: int,
    ) -> "SpikeEvents":
        """Build a single-population (1-D) train from parallel time/index lists."""
        times = np.asarray(list(times), dtype=np.int64)
        neuron_indices = np.asarray(list(neuron_indices), dtype=np.int64)
        if times.shape != neuron_indices.shape:
            raise ValueError("times and neuron_indices must have the same length")
        return cls(times, neuron_indices, None, num_steps, (int(num_neurons),))

    # -- basic properties ----------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Length of the time window ``T``."""
        return self._num_steps

    @property
    def population_shape(self) -> Tuple[int, ...]:
        """Shape of the neuron population."""
        return self._population_shape

    @property
    def num_neurons(self) -> int:
        """Total number of neurons in the population."""
        return int(np.prod(self._population_shape))

    @property
    def num_events(self) -> int:
        """Number of occupied ``(step, neuron)`` slots."""
        self._ensure_canonical()
        return int(self.times.size)

    @property
    def counts(self) -> np.ndarray:
        """Dense ``(T, *population)`` materialisation of this train.

        Provided for interoperability with dense-only consumers (the
        time-stepped simulator, plotting, tests); event hot paths never touch
        it.  The materialisation is cached -- treat it as read-only.
        """
        if self._dense_cache is None:
            self._dense_cache = self.to_dense().counts
        return self._dense_cache

    def total_spikes(self) -> int:
        """Total number of spikes in the window."""
        return int(self.event_counts.sum())

    def spikes_per_neuron(self) -> np.ndarray:
        """Per-neuron spike counts (shape ``population_shape``)."""
        flat = np.bincount(
            self.neuron_indices, weights=self.event_counts, minlength=self.num_neurons
        ).astype(np.int64)
        return flat.reshape(self._population_shape)

    def firing_rates(self) -> np.ndarray:
        """Per-neuron firing rate (spikes per time step)."""
        return self.spikes_per_neuron() / float(self._num_steps)

    def occupied_slots(self) -> int:
        """Number of ``(step, neuron)`` slots that carry at least one spike."""
        return self.num_events

    def first_spike_times(self, no_spike_value: Optional[int] = None) -> np.ndarray:
        """Per-neuron time of the first spike (see dense counterpart)."""
        fill = self._num_steps if no_spike_value is None else int(no_spike_value)
        # Use num_steps as the in-flight sentinel (always > any event time) so
        # a negative user fill value cannot shadow real spike times.
        first = np.full(self.num_neurons, self._num_steps, dtype=np.int64)
        if self.times.size:
            np.minimum.at(first, self.neuron_indices, self.times)
        result = np.where(first < self._num_steps, first, fill)
        return result.reshape(self._population_shape)

    def copy(self) -> "SpikeEvents":
        """Deep copy."""
        return SpikeEvents(
            self.times.copy(), self.neuron_indices.copy(), self.event_counts.copy(),
            self._num_steps, self._population_shape, _canonical=self._canonical,
        )

    def view(self) -> "SpikeEvents":
        """New wrapper sharing this train's buffers (trains are immutable)."""
        return SpikeEvents(
            self.times, self.neuron_indices, self.event_counts,
            self._num_steps, self._population_shape, _canonical=self._canonical,
        )

    # -- backend conversion --------------------------------------------------
    def to_dense(self) -> SpikeTrainArray:
        """Lossless conversion to the dense backend."""
        self._ensure_canonical()
        flat = np.zeros((self._num_steps, self.num_neurons), dtype=np.int16)
        if self.times.size:
            # Canonical events have unique (time, neuron) slots.
            flat[self.times, self.neuron_indices] = self.event_counts
        return SpikeTrainArray(
            flat.reshape((self._num_steps,) + self._population_shape), copy=False
        )

    def to_events(self) -> "SpikeEvents":
        """This train (already event-driven)."""
        return self

    # -- window queries ------------------------------------------------------
    def step_support(self) -> Tuple[int, int]:
        """Smallest step window ``[lo, hi)`` containing every spike.

        O(events) min/max scan; returns ``(0, 0)`` for an empty train.
        """
        if self.times.size == 0:
            return 0, 0
        return int(self.times.min()), int(self.times.max()) + 1

    def window_counts(
        self, start: int, stop: Optional[int] = None
    ) -> np.ndarray:
        """Dense per-step counts for steps ``[start, stop)`` only.

        Event-native scatter into a ``(stop - start, *population_shape)``
        array: only the requested sub-window is ever densified, which is how
        the window scheduler assembles a layer's drive straight from the
        event lists without materialising the full ``(T, ...)`` grid.
        ``stop=None`` means "until the end".
        """
        start, stop = _resolve_window((start, stop), self._num_steps)
        width = stop - start
        if self._dense_cache is not None:
            return self._dense_cache[start:stop]
        self._ensure_canonical()
        flat = np.zeros((width, self.num_neurons), dtype=np.int16)
        if width and self.times.size:
            sel = (self.times >= start) & (self.times < stop)
            # Canonical events have unique (time, neuron) slots.
            flat[self.times[sel] - start, self.neuron_indices[sel]] = (
                self.event_counts[sel]
            )
        return flat.reshape((width,) + self._population_shape)

    def slice_window(self, start: int, stop: Optional[int] = None) -> "SpikeEvents":
        """A new train holding only steps ``[start, stop)``, re-based to 0.

        O(events) filter; the window must be non-empty after clipping to
        ``[0, num_steps]``.
        """
        start, stop = _resolve_window((start, stop), self._num_steps)
        if start >= stop:
            raise ValueError(
                f"slice_window needs a non-empty window, got [{start}, {stop})"
            )
        sel = (self.times >= start) & (self.times < stop)
        return SpikeEvents(
            self.times[sel] - start, self.neuron_indices[sel],
            self.event_counts[sel], stop - start, self._population_shape,
            _canonical=self._canonical,
        )

    # -- transformations -----------------------------------------------------
    def weighted_sum(self, weights_per_step: np.ndarray) -> np.ndarray:
        """Sum of per-spike kernel weights for every neuron (decode primitive).

        Implemented as an O(events) scatter-add of ``kernel[t] * count``
        instead of the dense backend's O(T*N) contraction.
        """
        weights_per_step = np.asarray(weights_per_step)
        if weights_per_step.shape != (self._num_steps,):
            raise ValueError(
                f"weights_per_step must have shape ({self._num_steps},), "
                f"got {weights_per_step.shape}"
            )
        if self.times.size == 0:
            return np.zeros(self._population_shape, dtype=np.float64)
        # Match the dense backend's float32 kernel precision, accumulate in
        # float64 (bincount's native accumulator).
        contrib = (
            weights_per_step.astype(np.float32, copy=False)[self.times]
            .astype(np.float64) * self.event_counts
        )
        flat = np.bincount(
            self.neuron_indices, weights=contrib, minlength=self.num_neurons
        )
        return flat.reshape(self._population_shape)

    def delete_spikes(self, probability: float, rng: RngLike = None) -> "SpikeEvents":
        """Return a train with every spike independently deleted with ``probability``.

        Binomial thinning over the event list: O(events) random draws instead
        of one draw per dense ``(step, neuron)`` slot.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        if probability == 0.0 or self.times.size == 0:
            return self.view()
        generator = default_rng(rng)
        if probability == 1.0:
            return SpikeEvents.zeros(self._num_steps, self._population_shape)
        if self.event_counts.max(initial=0) <= 1:
            # Fast path for binary trains: one uniform draw per event.
            survivors = self.event_counts * (
                generator.random(self.event_counts.shape, dtype=np.float32)
                >= probability
            )
        else:
            survivors = generator.binomial(self.event_counts, 1.0 - probability)
        mask = survivors > 0
        return SpikeEvents(
            self.times[mask], self.neuron_indices[mask],
            survivors[mask].astype(np.int64),
            self._num_steps, self._population_shape, _canonical=self._canonical,
        )

    def jitter_spikes(
        self,
        sigma: float,
        rng: RngLike = None,
        mode: str = "clip",
    ) -> "SpikeEvents":
        """Return a train with every spike time shifted by quantised Gaussian noise.

        Shifts are added directly to the event times -- no dense
        ``nonzero``/``repeat``/``bincount`` reconstruction.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if mode not in ("clip", "drop"):
            raise ValueError(f"mode must be 'clip' or 'drop', got {mode!r}")
        if sigma == 0.0 or self.times.size == 0:
            return self.view()
        generator = default_rng(rng)
        if self.event_counts.max(initial=0) <= 1:
            times, neurons = self.times, self.neuron_indices
        else:
            # Each individual spike of a multi-count event moves independently.
            times = np.repeat(self.times, self.event_counts)
            neurons = np.repeat(self.neuron_indices, self.event_counts)
        shifts = np.rint(generator.normal(0.0, sigma, size=times.shape)).astype(np.int64)
        shifted = times + shifts
        if mode == "clip":
            shifted = np.clip(shifted, 0, self._num_steps - 1)
        else:
            keep = (shifted >= 0) & (shifted < self._num_steps)
            shifted = shifted[keep]
            neurons = neurons[keep]
        return SpikeEvents(
            shifted, neurons, None, self._num_steps, self._population_shape
        )

    def mask_neurons(self, keep: np.ndarray) -> "SpikeEvents":
        """Return a train with all spikes of masked-out neurons removed.

        O(events) filter of the event list (see the dense counterpart for the
        fault semantics).
        """
        keep = _broadcast_population_mask(keep, self._population_shape)
        if keep.all():
            return self.view()
        keep_flat = np.broadcast_to(keep, self._population_shape).ravel()
        sel = keep_flat[self.neuron_indices]
        return SpikeEvents(
            self.times[sel], self.neuron_indices[sel], self.event_counts[sel],
            self._num_steps, self._population_shape, _canonical=self._canonical,
        )

    def force_firing(
        self,
        mask: np.ndarray,
        window: Optional[Tuple[int, Optional[int]]] = None,
    ) -> "SpikeEvents":
        """Return a train where masked neurons emit exactly one spike per step.

        Original events of stuck neurons inside ``window`` are discarded and
        replaced by a regular one-spike-per-step grid (see the dense
        counterpart for the fault semantics).
        """
        mask = _broadcast_population_mask(mask, self._population_shape)
        start, stop = _resolve_window(window, self._num_steps)
        if not mask.any() or start >= stop:
            return self.view()
        mask_flat = np.broadcast_to(mask, self._population_shape).ravel()
        forced = np.flatnonzero(mask_flat)
        sel = (
            ~mask_flat[self.neuron_indices]
            | (self.times < start)
            | (self.times >= stop)
        )
        width = stop - start
        return SpikeEvents(
            np.concatenate(
                [self.times[sel], np.repeat(np.arange(start, stop), forced.size)]
            ),
            np.concatenate([self.neuron_indices[sel], np.tile(forced, width)]),
            np.concatenate(
                [self.event_counts[sel], np.ones(width * forced.size, dtype=np.int64)]
            ),
            self._num_steps, self._population_shape,
        )

    def drop_window(self, start: int, stop: int) -> "SpikeEvents":
        """Return a train with every spike in steps ``[start, stop)`` removed.

        O(events) filter (see the dense counterpart for the fault semantics).
        """
        start, stop = _resolve_window((start, stop), self._num_steps)
        if start >= stop:
            return self.view()
        sel = (self.times < start) | (self.times >= stop)
        return SpikeEvents(
            self.times[sel], self.neuron_indices[sel], self.event_counts[sel],
            self._num_steps, self._population_shape, _canonical=self._canonical,
        )

    def merge(self, other: "SpikeTrain") -> "SpikeEvents":
        """Superpose two spike trains of identical window and population."""
        if isinstance(other, SpikeTrainArray):
            other = other.to_events()
        if (self._num_steps != other.num_steps
                or self._population_shape != other.population_shape):
            raise ValueError(
                f"cannot merge spike trains of shapes "
                f"({self._num_steps}, {self._population_shape}) and "
                f"({other.num_steps}, {other.population_shape})"
            )
        return SpikeEvents(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.neuron_indices, other.neuron_indices]),
            np.concatenate([self.event_counts, other.event_counts]),
            self._num_steps, self._population_shape,
        )

    # -- dunder helpers --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpikeTrainArray):
            other = other.to_events()
        if not isinstance(other, SpikeEvents):
            return NotImplemented
        self._ensure_canonical()
        other._ensure_canonical()
        return (
            self._num_steps == other.num_steps
            and self._population_shape == other.population_shape
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.neuron_indices, other.neuron_indices)
            and np.array_equal(self.event_counts, other.event_counts)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpikeEvents(T={self._num_steps}, population={self._population_shape}, "
            f"events={self.num_events}, spikes={self.total_spikes()})"
        )


#: Either spike-train backend; the shared protocol every consumer codes against.
SpikeTrain = Union[SpikeTrainArray, SpikeEvents]
