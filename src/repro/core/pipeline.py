"""End-to-end noise-robust SNN pipeline -- the library's main public API.

:class:`NoiseRobustSNN` wraps everything a user needs to reproduce the paper:

>>> snn = NoiseRobustSNN.from_dnn(trained_model, calibration_images,
...                               coding="ttas", target_duration=5,
...                               num_steps=64, weight_scaling=True)
>>> result = snn.evaluate(test_images, test_labels, deletion=0.5)
>>> result.accuracy, result.spikes_per_sample

The pipeline owns the converted network and builds, per evaluation, the coder
/ noise / weight-scaling combination requested -- mirroring how the paper
evaluates one trained network under many noise conditions without any
retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.coding.base import NeuralCoder
from repro.conversion.converter import ConvertedSNN, convert_dnn_to_snn
from repro.core.servable import ServableModel
from repro.core.timestep import evaluate_timestep
from repro.core.transport import TransportResult, evaluate_transport
from repro.core.weight_scaling import WeightScaling
from repro.nn.model import Sequential
from repro.noise.injector import NoiseInjector
from repro.utils.rng import RngLike
from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (execution -> pipeline)
    from repro.execution.plan import EvaluationPlan

#: Evaluation simulators a pipeline (and hence a sweep cell) can run on:
#: the fast activation-transport evaluator, or the faithful time-stepped
#: membrane simulation (any coding with a per-layer temporal protocol --
#: rate, phase, TTFS, TTAS; fused/stepped engine selected via
#: ``REPRO_SIM_BACKEND``).
SIMULATORS = ("transport", "timestep")


@dataclass
class EvaluationResult:
    """Result of one noisy evaluation of the pipeline.

    Attributes
    ----------
    accuracy:
        Top-1 accuracy.
    total_spikes / spikes_per_sample:
        Spike counts after noise, summed over all spiking interfaces.
    coding:
        Name of the coding scheme used.
    deletion / jitter:
        Noise levels of this evaluation.
    weight_scaling_factor:
        The factor ``C`` that was in effect (1.0 when scaling is disabled).
    num_samples:
        Number of evaluated samples.
    """

    accuracy: float
    total_spikes: int
    spikes_per_sample: float
    coding: str
    deletion: float
    jitter: float
    weight_scaling_factor: float
    num_samples: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view used by reporting and the result store."""
        return {
            "accuracy": self.accuracy,
            "total_spikes": self.total_spikes,
            "spikes_per_sample": self.spikes_per_sample,
            "coding": self.coding,
            "deletion": self.deletion,
            "jitter": self.jitter,
            "weight_scaling_factor": self.weight_scaling_factor,
            "num_samples": self.num_samples,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "EvaluationResult":
        """Rebuild a result from :meth:`as_dict` output (JSON round-trip).

        ``float``/``int`` coercions restore the exact dataclass field types,
        so a result loaded from the on-disk store compares equal -- bit for
        bit -- to the freshly evaluated one it was saved from.
        """
        return cls(
            accuracy=float(payload["accuracy"]),
            total_spikes=int(payload["total_spikes"]),
            spikes_per_sample=float(payload["spikes_per_sample"]),
            coding=str(payload["coding"]),
            deletion=float(payload["deletion"]),
            jitter=float(payload["jitter"]),
            weight_scaling_factor=float(payload["weight_scaling_factor"]),
            num_samples=int(payload["num_samples"]),
        )


class NoiseRobustSNN:
    """High-level facade over conversion, coding, noise and weight scaling.

    Instances are normally created with :meth:`from_dnn`.  The constructor
    accepts an already converted network -- or a frozen
    :class:`~repro.core.servable.ServableModel` -- for advanced use (e.g.
    sharing one conversion across many coders in the benchmark harness, or
    evaluating an artifact the serving registry already holds resident).
    """

    def __init__(
        self,
        network: "ConvertedSNN | ServableModel",
        coding: str = "ttas",
        num_steps: int = 64,
        weight_scaling: bool = True,
        scaling_mode: str = "inverse",
        coder_kwargs: Optional[Dict] = None,
        spike_backend: Optional[str] = None,
        analog_backend: Optional[str] = None,
        simulator: str = "transport",
        sim_backend: Optional[str] = None,
    ):
        if simulator not in SIMULATORS:
            raise ValueError(
                f"simulator must be one of {SIMULATORS}, got {simulator!r}"
            )
        #: The frozen conversion-time artifact (network + memoised coders /
        #: protocols) shared with the serving layer; a bare ConvertedSNN is
        #: wrapped on the way in.
        self.servable = ServableModel.wrap(network)
        self.coding = coding
        self.num_steps = int(num_steps)
        self.coder_kwargs = dict(coder_kwargs or {})
        self.weight_scaling_enabled = bool(weight_scaling)
        self.scaling_mode = scaling_mode
        #: Spike-train backend override ("dense"/"events"; None = coder/env).
        self.spike_backend = spike_backend
        #: Analog (im2col/conv) backend override ("loop"/"strided"; None = env).
        self.analog_backend = analog_backend
        #: Evaluation simulator: fast activation transport (default) or the
        #: faithful time-stepped membrane simulation.
        self.simulator = simulator
        #: Simulation-engine override for the timestep simulator
        #: ("fused"/"stepped"; None = REPRO_SIM_BACKEND / fused default).
        self.sim_backend = sim_backend

    @property
    def network(self) -> ConvertedSNN:
        """The converted network inside the servable artifact."""
        return self.servable.network

    @network.setter
    def network(self, value) -> None:
        # Swapping the network swaps the artifact: the memoised coders and
        # protocols of the old network must not leak onto the new one.
        self.servable = ServableModel.wrap(value)

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_dnn(
        cls,
        model: Sequential,
        calibration_inputs: np.ndarray,
        coding: str = "ttas",
        num_steps: int = 64,
        target_duration: Optional[int] = None,
        weight_scaling: bool = True,
        scaling_mode: str = "inverse",
        percentile: float = 99.9,
        spike_backend: Optional[str] = None,
        analog_backend: Optional[str] = None,
        simulator: str = "transport",
        fuse_batch_norm: bool = True,
        **coder_kwargs,
    ) -> "NoiseRobustSNN":
        """Convert a trained DNN and wrap it in a noise-robust SNN pipeline.

        Parameters
        ----------
        model:
            Trained :class:`repro.nn.model.Sequential` classifier.
        calibration_inputs:
            Batch of training images used for activation-scale calibration.
        coding:
            Coding scheme name ("rate", "phase", "burst", "ttfs", "ttas" or
            "ttas(k)").
        num_steps:
            Encoding window length ``T``.
        target_duration:
            Burst duration ``t_a`` (TTAS only).
        weight_scaling:
            Enable the weight-scaling compensation.
        scaling_mode:
            ``"inverse"`` or ``"proportional"`` (see
            :class:`repro.core.weight_scaling.WeightScaling`).
        percentile:
            Activation-scale percentile for conversion.
        analog_backend:
            Analog (im2col/conv) backend override for the segment forward
            passes ("loop" or "strided"); ``None`` defers to
            ``REPRO_ANALOG_BACKEND`` / the strided default.
        simulator:
            ``"transport"`` (fast activation-transport evaluation, default)
            or ``"timestep"`` (faithful membrane simulation; every coding
            with a per-layer temporal protocol -- rate, phase, ttfs, ttas;
            fused/stepped engine via ``REPRO_SIM_BACKEND``).
        fuse_batch_norm:
            Fold batch normalisation into the adjacent weighted layers at
            conversion time (default; see :func:`convert_dnn_to_snn`).
        coder_kwargs:
            Extra keyword arguments forwarded to the coder constructor.
        """
        network = convert_dnn_to_snn(
            model, calibration_inputs, percentile=percentile,
            fuse_batch_norm=fuse_batch_norm,
        )
        if target_duration is not None:
            coder_kwargs["target_duration"] = int(target_duration)
        return cls(
            network=network,
            coding=coding,
            num_steps=num_steps,
            weight_scaling=weight_scaling,
            scaling_mode=scaling_mode,
            coder_kwargs=coder_kwargs,
            spike_backend=spike_backend,
            analog_backend=analog_backend,
            simulator=simulator,
        )

    @classmethod
    def from_plan(cls, plan: "EvaluationPlan", network: ConvertedSNN) -> "NoiseRobustSNN":
        """Build the pipeline of one sweep cell from its declarative plan.

        The plan carries the coder / weight-scaling / backend configuration
        by value; only the converted network -- resolved from the plan's
        workload reference by the execution engine -- is a live object.
        """
        return cls(
            network=network,
            coding=plan.method.coding,
            num_steps=plan.num_steps,
            weight_scaling=plan.method.weight_scaling,
            scaling_mode=plan.scaling_mode,
            coder_kwargs=plan.method.coder_kwargs(),
            spike_backend=plan.spike_backend,
            analog_backend=plan.analog_backend,
            simulator=plan.simulator,
            sim_backend=plan.sim_backend,
        )

    # -- helpers -----------------------------------------------------------------
    def make_coder(self) -> NeuralCoder:
        """The configured coder (memoised on the servable artifact).

        Coders are shareable -- their only mutable state is idempotent
        weight caches -- so repeated evaluations of one pipeline (and any
        serving traffic on the same artifact) reuse a single instance
        instead of rebuilding kernels per call.
        """
        return self.servable.coder(
            self.coding, self.num_steps, **self.coder_kwargs
        )

    def make_weight_scaling(self) -> WeightScaling:
        """Instantiate the configured weight-scaling policy."""
        if not self.weight_scaling_enabled:
            return WeightScaling.disabled()
        return WeightScaling(mode=self.scaling_mode)

    def analog_accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the underlying analog (converted, folded) network."""
        return self.network.analog_accuracy(np.asarray(x, dtype=np.float32), labels)

    # -- evaluation ----------------------------------------------------------------
    def evaluate(
        self,
        x: np.ndarray,
        labels: Optional[np.ndarray] = None,
        deletion: float = 0.0,
        jitter: float = 0.0,
        expected_deletion: Optional[float] = None,
        batch_size: int = 16,
        rng: RngLike = None,
        dead: float = 0.0,
        stuck: float = 0.0,
        burst_error: float = 0.0,
        sample_offset: int = 0,
        quant_bits: Optional[int] = None,
    ) -> EvaluationResult:
        """Evaluate the SNN under the given noise levels.

        Parameters
        ----------
        x, labels:
            Evaluation images (non-negative) and integer labels.
        deletion:
            Spike-deletion probability ``p``.
        jitter:
            Spike-jitter standard deviation ``sigma`` (time steps).
        expected_deletion:
            Deletion probability assumed by weight scaling; defaults to the
            actual ``deletion`` (the paper scales for the noise level it
            evaluates).
        batch_size:
            Transport-evaluation batch size.
        rng:
            Seed or generator for the stochastic noise.
        dead / stuck / burst_error:
            Hardware-fault levels (extension): fraction of dead
            (stuck-at-silent) neurons, fraction of stuck-at-fire neurons,
            and fraction of the time window lost to a correlated burst
            error.  On the transport evaluator the faults corrupt every
            interface train; on the faithful timestep evaluator dead/stuck
            masks are additionally applied inside the simulator to each
            spiking layer's emitted spikes (burst errors hit the input
            train, the only place a transmission window exists).
        sample_offset:
            Absolute position of ``x[0]`` within the full evaluation this
            call is a part of.  Non-zero when evaluating one sample shard of
            a larger cell: per-batch noise streams are keyed by absolute
            sample offsets, so a batch-aligned shard passing its start
            offset reproduces exactly the noise the unsharded evaluation
            would apply to the same samples.
        quant_bits:
            Finite-precision synapse ablation: quantise every weight tensor
            to this many bits (uniform symmetric,
            :class:`repro.noise.faults.WeightQuantizationNoise`) on a *copy*
            of the network before evaluating.  Deterministic -- consumes no
            RNG stream -- and supported on both evaluators; ``None`` = full
            precision.
        """
        check_probability("deletion", deletion)
        check_non_negative("jitter", jitter)
        check_probability("dead", dead)
        check_probability("stuck", stuck)
        check_probability("burst_error", burst_error)
        network = self.network
        if quant_bits is not None:
            from repro.noise.faults import quantize_network

            # Quantise here for the transport path; the timestep path defers
            # to evaluate_timestep's own quant_bits hook (same helper) so its
            # direct callers get the ablation too.
            if self.simulator != "timestep":
                network = quantize_network(network, int(quant_bits))
        coder = self.make_coder()
        noise = NoiseInjector.from_levels(
            deletion_probability=deletion, jitter_sigma=jitter,
            burst_error_fraction=burst_error,
            dead_fraction=dead, stuck_fraction=stuck,
        )
        scaling = self.make_weight_scaling()
        assumed = deletion if expected_deletion is None else expected_deletion
        kwargs = dict(
            network=network,
            coder=coder,
            x=x,
            labels=labels,
            noise=noise,
            weight_scaling=scaling,
            expected_deletion=assumed,
            spike_backend=self.spike_backend,
            analog_backend=self.analog_backend,
            batch_size=batch_size,
            rng=rng,
            sample_offset=sample_offset,
        )
        if self.simulator == "timestep":
            result: TransportResult = evaluate_timestep(
                sim_backend=self.sim_backend, dead=dead, stuck=stuck,
                quant_bits=quant_bits, **kwargs
            )
        else:
            result = evaluate_transport(**kwargs)
        return EvaluationResult(
            accuracy=result.accuracy,
            total_spikes=result.total_spikes,
            spikes_per_sample=result.spikes_per_sample,
            coding=self.coding,
            deletion=float(deletion),
            jitter=float(jitter),
            weight_scaling_factor=scaling.factor(assumed),
            num_samples=result.num_samples,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NoiseRobustSNN(coding={self.coding!r}, num_steps={self.num_steps}, "
            f"weight_scaling={self.weight_scaling_enabled}, "
            f"network={self.network.source_name!r})"
        )
