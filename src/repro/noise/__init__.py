"""Spike-train noise models.

The paper models the dynamic noise of analog neuromorphic hardware as noisy
*output spikes* rather than noisy parameters (Sec. II-B): spikes are deleted
with probability ``p`` or shifted in time by quantised Gaussian jitter with
standard deviation ``sigma``.  This package implements exactly those two
transforms plus a composite injector and, as an extension, the parametric
weight-noise model used by earlier work for comparison.
"""

from repro.noise.base import IdentityNoise, SpikeNoise
from repro.noise.deletion import DeletionNoise
from repro.noise.jitter import JitterNoise
from repro.noise.injector import NoiseInjector
from repro.noise.weights import GaussianWeightNoise, apply_weight_noise

__all__ = [
    "SpikeNoise",
    "IdentityNoise",
    "DeletionNoise",
    "JitterNoise",
    "NoiseInjector",
    "GaussianWeightNoise",
    "apply_weight_noise",
]
