"""Spike-count statistics and energy proxies.

The right-hand axes of Figs. 2 and 3 and the spike-count columns of Table I
report the number of spikes an inference uses -- the quantity that determines
the energy draw of event-driven neuromorphic hardware.  ``energy_proxy``
turns spike counts into a relative energy estimate using the standard
"energy per synaptic operation" model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.snn.spikes import SpikeTrain
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SpikeStatistics:
    """Summary of spiking activity for one evaluation.

    Attributes
    ----------
    total_spikes:
        Number of spikes over all interfaces and samples.
    spikes_per_sample:
        Average spikes per classified sample.
    spikes_per_interface:
        Breakdown by spiking interface (0 = input encoding).
    num_samples:
        Number of samples the counts were accumulated over.
    """

    total_spikes: int
    spikes_per_sample: float
    spikes_per_interface: Dict[int, int]
    num_samples: int


def spike_statistics(
    spikes_per_interface: Mapping[int, int], num_samples: int
) -> SpikeStatistics:
    """Build a :class:`SpikeStatistics` from per-interface totals."""
    check_positive("num_samples", num_samples)
    total = int(sum(spikes_per_interface.values()))
    return SpikeStatistics(
        total_spikes=total,
        spikes_per_sample=total / int(num_samples),
        spikes_per_interface=dict(spikes_per_interface),
        num_samples=int(num_samples),
    )


def spike_train_sparsity(train: SpikeTrain) -> float:
    """Fraction of (step, neuron) slots that carry no spike."""
    total_slots = train.num_steps * train.num_neurons
    if total_slots == 0:
        return 1.0
    return 1.0 - train.occupied_slots() / float(total_slots)


def energy_proxy(
    total_spikes: int,
    energy_per_spike_nj: float = 0.9e-3,
    static_power_nj: float = 0.0,
) -> float:
    """Relative energy estimate (in micro-joules) of an inference.

    Uses the conventional event-driven model: energy ~ number of synaptic
    events x energy per event.  The default per-event energy (0.9 pJ) is the
    figure commonly cited for 45 nm digital accumulate operations; the
    absolute number matters less than the ratio between coding schemes.
    """
    if total_spikes < 0:
        raise ValueError(f"total_spikes must be >= 0, got {total_spikes}")
    if energy_per_spike_nj < 0 or static_power_nj < 0:
        raise ValueError("energy terms must be non-negative")
    return float(total_spikes * energy_per_spike_nj + static_power_nj) / 1e3
