"""Argument validation helpers used across the library.

These helpers centralise the error messages for the most common kinds of
invalid input (negative sizes, out-of-range probabilities, mismatched
shapes) so that user-facing errors stay consistent.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Raise ``ValueError`` unless ``value`` is >= 0 and finite."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_probability(name: str, value: Number) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_shape(
    name: str, array: np.ndarray, expected: Sequence[Union[int, None]]
) -> np.ndarray:
    """Validate the shape of ``array``.

    ``expected`` may contain ``None`` entries as wildcards, e.g.
    ``check_shape("x", x, (None, 3, 32, 32))`` accepts any batch size.
    """
    array = np.asarray(array)
    expected_tuple: Tuple[Union[int, None], ...] = tuple(expected)
    if array.ndim != len(expected_tuple):
        raise ValueError(
            f"{name} must have {len(expected_tuple)} dimensions "
            f"(expected shape {expected_tuple}), got shape {array.shape}"
        )
    for axis, (actual, wanted) in enumerate(zip(array.shape, expected_tuple)):
        if wanted is not None and actual != wanted:
            raise ValueError(
                f"{name} has size {actual} on axis {axis}, expected {wanted} "
                f"(full expected shape {expected_tuple}, got {array.shape})"
            )
    return array


def level_index(
    levels: Sequence[Number], level: Number,
    rtol: float = 1e-9, atol: float = 1e-9,
) -> int:
    """Index of ``level`` in ``levels``, matched with a float tolerance.

    Noise levels produced by arithmetic (``np.linspace``, ``0.1 * i``) are
    rarely bit-equal to the literal a caller asks for, so an exact
    ``list.index`` lookup breaks; this matches the closest level within
    ``rtol``/``atol`` instead and raises ``KeyError`` when nothing is close.
    """
    values = np.asarray(levels, dtype=np.float64)
    if values.size == 0:
        raise KeyError(f"noise level {level} is not part of an empty sweep")
    target = float(level)
    distances = np.abs(values - target)
    index = int(distances.argmin())
    if not np.isclose(values[index], target, rtol=rtol, atol=atol):
        raise KeyError(
            f"noise level {level} is not part of this sweep "
            f"(levels: {[float(v) for v in values]})"
        )
    return index


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a container of ``size``."""
    value = int(value)
    if value < 0 or value >= size:
        raise ValueError(f"{name} must lie in [0, {size}), got {value}")
    return value
