#!/usr/bin/env bash
# Window-scheduler smoke run.
#
# The fused engine's window scheduler (REPRO_SIM_WINDOWED) must change no
# result bits, so -- like REPRO_SIM_WORKERS -- it is not a sweep-plan
# fingerprint dimension.  Proof, end to end: a temporal (TTFS) faithful
# sweep evaluated with the scheduler ON is re-run with the scheduler OFF
# against the same result store; every cell must hit the same store
# fingerprint (0 cells re-evaluated, no document rewritten), i.e. both
# configurations produce identical cells under identical fingerprints.
# A final windowed-off evaluate guards the dense fused path end to end.
#
# Run from the repository root: bash ci/smoke_window_scheduler.sh
set -euo pipefail

export PYTHONPATH="${PYTHONPATH:-src}"
STORE="${REPRO_SMOKE_STORE:-/tmp/repro-ci-windowstore}"
rm -rf "$STORE"

REPRO_SIM_WINDOWED=1 python -m repro figure --name fig2 --dataset mnist \
  --scale test --eval-size 8 --simulator timestep \
  --methods TTFS --executor process --max-workers 2 \
  --result-store "$STORE"
test "$(find "$STORE/cells" -name '*.json' | wc -l)" -eq 5
touch "$STORE/sentinel"
REPRO_SIM_WINDOWED=0 python -m repro figure --name fig2 --dataset mnist \
  --scale test --eval-size 8 --simulator timestep \
  --methods TTFS --executor serial \
  --result-store "$STORE"
test "$(find "$STORE/cells" -name '*.json' | wc -l)" -eq 5
test "$(find "$STORE/cells" -name '*.json' -newer "$STORE/sentinel" | wc -l)" -eq 0
REPRO_SIM_WINDOWED=0 python -m repro evaluate \
  --dataset mnist --scale test --coding ttas --simulator timestep \
  --eval-size 8
echo "window-scheduler smoke: scheduler on/off hit identical store fingerprints"
