"""Spike-train noise models.

The paper models the dynamic noise of analog neuromorphic hardware as noisy
*output spikes* rather than noisy parameters (Sec. II-B): spikes are deleted
with probability ``p`` or shifted in time by quantised Gaussian jitter with
standard deviation ``sigma``.  This package implements exactly those two
transforms plus a composite injector and, as extensions, the parametric
weight-noise model used by earlier work for comparison and a family of
structured hardware-fault models (dead neurons, stuck-at-fire neurons,
correlated burst errors, weight quantization) in :mod:`repro.noise.faults`.
"""

from repro.noise.base import IdentityNoise, SpikeNoise
from repro.noise.deletion import DeletionNoise
from repro.noise.faults import (
    BurstErrorNoise,
    DeadNeuronNoise,
    StuckAtFireNoise,
    WeightQuantizationNoise,
    quantize_weights,
)
from repro.noise.jitter import JitterNoise
from repro.noise.injector import NoiseInjector
from repro.noise.weights import GaussianWeightNoise, apply_weight_noise

__all__ = [
    "SpikeNoise",
    "IdentityNoise",
    "DeletionNoise",
    "JitterNoise",
    "BurstErrorNoise",
    "DeadNeuronNoise",
    "StuckAtFireNoise",
    "WeightQuantizationNoise",
    "quantize_weights",
    "NoiseInjector",
    "GaussianWeightNoise",
    "apply_weight_noise",
]
