"""Tests for losses, optimisers, schedules and initialisers."""

import numpy as np
import pytest

from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import Dense
from repro.nn.losses import CrossEntropyLoss, MSELoss, softmax
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedules import ConstantSchedule, CosineSchedule, StepSchedule
from tests.conftest import numeric_gradient


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(4, 7))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_cross_entropy_perfect_prediction(self):
        loss = CrossEntropyLoss()
        logits = np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_uniform(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((3, 4))
        assert abs(loss.forward(logits, np.array([0, 1, 2])) - np.log(4)) < 1e-6

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 4, 0])
        loss = CrossEntropyLoss()

        def value():
            return loss.forward(logits, labels)

        value()
        grad = loss.backward()
        numeric = numeric_gradient(value, logits)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.array([[15.0, 0.0, 0.0]])
        labels = np.array([0])
        plain = CrossEntropyLoss().forward(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.1).forward(logits, labels)
        assert smoothed > plain

    def test_cross_entropy_shape_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 4)), np.array([0, 1]))

    def test_mse_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([1.0, 1.0, 1.0])
        assert abs(loss.forward(pred, target) - 5.0 / 3.0) < 1e-9
        grad = loss.backward()
        assert np.allclose(grad, 2 * (pred - target) / 3)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(3), np.zeros(4))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class QuadraticProblem:
    """Minimise ||W x - y||^2 for a fixed batch -- used to test optimisers."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.layer = Dense(6, 4, rng=0)
        self.x = rng.random((16, 6)).astype(np.float32)
        true_w = rng.random((6, 4)).astype(np.float32)
        self.y = self.x @ true_w

    def loss_and_grads(self):
        out = self.layer.forward(self.x, training=True)
        diff = out - self.y
        self.layer.zero_grads()
        self.layer.backward(2 * diff / diff.size)
        return float((diff ** 2).mean())


class TestOptimizers:
    @pytest.mark.parametrize("optimizer", [
        SGD(learning_rate=0.5),
        SGD(learning_rate=0.2, momentum=0.9),
        SGD(learning_rate=0.2, momentum=0.9, nesterov=True),
        Adam(learning_rate=0.05),
    ])
    def test_optimizers_reduce_loss(self, optimizer):
        problem = QuadraticProblem()
        initial = problem.loss_and_grads()
        for _ in range(60):
            problem.loss_and_grads()
            optimizer.step([problem.layer])
        final = problem.loss_and_grads()
        assert final < initial * 0.1

    def test_weight_decay_shrinks_weights(self):
        layer = Dense(4, 4, rng=0)
        layer.zero_grads()  # zero gradient, only decay acts
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        before = np.abs(layer.params["weight"]).sum()
        for _ in range(10):
            optimizer.step([layer])
        after = np.abs(layer.params["weight"]).sum()
        assert after < before

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, nesterov=True)
        with pytest.raises(ValueError):
            Adam(learning_rate=0.1, beta1=1.0)

    def test_set_learning_rate(self):
        optimizer = SGD(learning_rate=0.1)
        optimizer.set_learning_rate(0.01)
        assert optimizer.learning_rate == 0.01
        with pytest.raises(ValueError):
            optimizer.set_learning_rate(0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(100) == 0.1

    def test_step_schedule(self):
        schedule = StepSchedule(1.0, milestones=[2, 4], gamma=0.1)
        assert schedule(0) == 1.0
        assert abs(schedule(2) - 0.1) < 1e-12
        assert abs(schedule(4) - 0.01) < 1e-12

    def test_cosine_schedule_endpoints(self):
        schedule = CosineSchedule(1.0, total_epochs=10, min_learning_rate=0.01)
        assert abs(schedule(0) - 1.0) < 1e-9
        assert abs(schedule(10) - 0.01) < 1e-9
        assert schedule(5) < schedule(1)


class TestInitializers:
    def test_he_normal_scale(self):
        w = he_normal((1000, 100), rng=0)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 5e-3

    def test_xavier_uniform_bounds(self):
        w = xavier_uniform((50, 60), rng=0)
        limit = np.sqrt(6.0 / 110)
        assert w.min() >= -limit and w.max() <= limit

    def test_conv_fan_in(self):
        w = he_normal((8, 4, 3, 3), rng=0)
        assert w.shape == (8, 4, 3, 3)

    def test_zeros(self):
        assert np.all(zeros_init((5,)) == 0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            he_normal((2, 3, 4), rng=0)
