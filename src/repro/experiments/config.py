"""Experiment configuration.

Two scales are defined:

* :data:`PAPER_SCALE` -- the parameters the paper itself uses (VGG16,
  1000/100 time steps, full test sets).  Provided for completeness and for
  users with more compute; nothing in the code prevents running it.
* :data:`BENCH_SCALE` -- the CPU-friendly defaults the benchmark harness
  uses: smaller VGG-style networks, shorter time windows and a few hundred
  evaluation images.  DESIGN.md documents why the qualitative shape of every
  result is preserved under this scaling.

The per-coding time-step ratio of the paper is preserved at both scales: the
temporal codes (TTFS/TTAS) use a window roughly 10x shorter than the
rate-like codes (108 vs 1000 steps in the paper), which is exactly what makes
a fixed jitter sigma hit them harder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import SIMULATORS
from repro.nn.layers import ANALOG_BACKENDS
from repro.noise.adversarial import ATTACK_KINDS, ATTACK_SEARCHES
from repro.snn.spikes import SPIKE_BACKENDS
from repro.utils.config import ConfigError, validate_choice
from repro.utils.validation import check_non_negative, check_positive

#: Datasets the paper evaluates on.
DATASET_NAMES = ("mnist", "cifar10", "cifar100")


@dataclass(frozen=True)
class ExperimentScale:
    """Global knobs that trade fidelity for runtime.

    Attributes
    ----------
    name:
        "paper" or "bench".
    rate_time_steps:
        Window length for rate / phase / burst coding.
    ttfs_time_steps:
        Window length for TTFS / TTAS coding (shorter, as in the paper).
    train_size / test_size:
        Dataset sizes per split.
    eval_size:
        Number of test images used per noise level.
    train_epochs:
        DNN training epochs.
    image_size:
        Spatial size of the CIFAR stand-ins (MNIST stays at 28).
    """

    name: str
    rate_time_steps: int
    ttfs_time_steps: int
    train_size: int
    test_size: int
    eval_size: int
    train_epochs: int
    image_size: int

    def __post_init__(self) -> None:
        for attr in (
            "rate_time_steps", "ttfs_time_steps", "train_size", "test_size",
            "eval_size", "train_epochs", "image_size",
        ):
            check_positive(attr, getattr(self, attr))

    def time_steps_for(self, coding: str) -> int:
        """Window length for the given coding scheme at this scale."""
        if coding.startswith("ttfs") or coding.startswith("ttas"):
            return self.ttfs_time_steps
        return self.rate_time_steps


#: Parameters as reported in the paper (Sec. V).
PAPER_SCALE = ExperimentScale(
    name="paper",
    rate_time_steps=1000,
    ttfs_time_steps=108,
    train_size=50000,
    test_size=10000,
    eval_size=10000,
    train_epochs=100,
    image_size=32,
)

#: CPU-friendly defaults used by the benchmark harness.
BENCH_SCALE = ExperimentScale(
    name="bench",
    rate_time_steps=32,
    ttfs_time_steps=16,
    train_size=1600,
    test_size=320,
    eval_size=40,
    train_epochs=10,
    image_size=16,
)

#: An even smaller scale used by the test suite.
TEST_SCALE = ExperimentScale(
    name="test",
    rate_time_steps=16,
    ttfs_time_steps=8,
    train_size=300,
    test_size=80,
    eval_size=24,
    train_epochs=2,
    image_size=12,
)


@dataclass(frozen=True)
class DatasetConfig:
    """Which dataset/model pair an experiment runs on.

    Attributes
    ----------
    name:
        "mnist", "cifar10" or "cifar100".
    architecture:
        Model family: "mlp" for MNIST, "vgg" for the CIFAR stand-ins (the
        paper uses VGG16; the bench scale uses the scaled-down VGG variants).
    vgg_config:
        Name of the VGG plan to build when architecture == "vgg".
    learning_rate:
        DNN training learning rate.
    """

    name: str
    architecture: str
    vgg_config: str = "vgg7"
    learning_rate: float = 0.02

    def __post_init__(self) -> None:
        validate_choice("name", self.name, DATASET_NAMES)
        validate_choice("architecture", self.architecture, ("mlp", "vgg"))


_DATASET_CONFIGS: Dict[str, DatasetConfig] = {
    "mnist": DatasetConfig(name="mnist", architecture="mlp", learning_rate=0.1),
    "cifar10": DatasetConfig(name="cifar10", architecture="vgg", vgg_config="vgg7"),
    "cifar100": DatasetConfig(name="cifar100", architecture="vgg", vgg_config="vgg7"),
}


def dataset_config(name: str) -> DatasetConfig:
    """Look up the configuration of one of the paper's datasets."""
    key = name.lower()
    if key not in _DATASET_CONFIGS:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {sorted(_DATASET_CONFIGS)}"
        )
    return _DATASET_CONFIGS[key]


@dataclass(frozen=True)
class MethodSpec:
    """One curve of a figure / one row block of a table.

    Attributes
    ----------
    coding:
        Coder name ("rate", "phase", "burst", "ttfs", "ttas").
    weight_scaling:
        Apply the weight-scaling compensation.
    target_duration:
        Burst duration t_a for TTAS.
    label:
        Legend label; derived from the other fields when omitted.
    """

    coding: str
    weight_scaling: bool = False
    target_duration: Optional[int] = None
    label: Optional[str] = None

    def display_label(self) -> str:
        """Label used in figure legends and table rows."""
        if self.label:
            return self.label
        base = self.coding.upper() if self.coding in ("ttfs", "ttas") else self.coding.capitalize()
        if self.coding == "ttas" and self.target_duration is not None:
            base = f"TTAS({self.target_duration})"
        return f"{base}+WS" if self.weight_scaling else base

    def coder_kwargs(self) -> Dict[str, int]:
        """Extra keyword arguments for the coder factory."""
        if self.coding == "ttas" and self.target_duration is not None:
            return {"target_duration": int(self.target_duration)}
        return {}


@dataclass(frozen=True)
class SweepConfig:
    """A full noise sweep: dataset, methods, noise axis and levels.

    Attributes
    ----------
    dataset:
        Dataset name.
    methods:
        The configurations compared (one per curve / table block).
    noise_kind:
        One of :data:`NOISE_KINDS` -- the paper's i.i.d. axes ("deletion",
        "jitter") or a hardware-fault axis ("dead", "stuck", "burst_error").
    levels:
        Noise levels on the x-axis (deletion probabilities, jitter sigmas or
        fault fractions).
    scale:
        Experiment scale (paper or bench).
    seed:
        Seed controlling training, conversion calibration and noise draws.
    spike_backend:
        Spike-train representation forced at every interface ("dense" or
        "events"; ``None`` = the coder/env preference).
    analog_backend:
        Analog im2col/conv engine for the segment forwards ("loop" or
        "strided"; ``None`` = the env/strided default).
    batch_size:
        Transport-evaluation batch size of every cell.  Part of the sweep
        identity: each batch derives its noise stream from its absolute
        sample offset, so a different batch size draws a different (equally
        valid) realisation.  It is also the sample-sharding granularity --
        shards cover whole batches (so their noise streams match the
        unsharded run's exactly), hence a cell splits into at most
        ``ceil(eval_size / batch_size)`` shards.
    simulator:
        Evaluation simulator of every cell: ``"transport"`` (fast
        activation-transport, default) or ``"timestep"`` (faithful
        time-stepped membrane simulation).  The faithful simulator runs
        every coding with a per-layer temporal protocol -- rate, phase,
        TTFS and TTAS; only schemes without a faithful correspondence
        (burst) are rejected, with the capability gap named in the error
        (filter those out of a figure with ``--methods`` /
        :func:`filter_methods`).
    """

    dataset: str
    methods: Tuple[MethodSpec, ...]
    noise_kind: str
    levels: Tuple[float, ...]
    scale: ExperimentScale = BENCH_SCALE
    seed: int = 0
    spike_backend: Optional[str] = None
    analog_backend: Optional[str] = None
    batch_size: int = 16
    simulator: str = "transport"

    def __post_init__(self) -> None:
        validate_choice("noise_kind", self.noise_kind, NOISE_KINDS)
        if not self.methods:
            raise ConfigError("a sweep needs at least one method")
        if not self.levels:
            raise ConfigError("a sweep needs at least one noise level")
        if self.spike_backend is not None:
            validate_choice("spike_backend", self.spike_backend, SPIKE_BACKENDS)
        if self.analog_backend is not None:
            validate_choice("analog_backend", self.analog_backend, ANALOG_BACKENDS)
        check_positive("batch_size", self.batch_size)
        validate_choice("simulator", self.simulator, SIMULATORS)
        if self.simulator == "timestep":
            # Per-capability validation: each coding scheme declares whether
            # it has a faithful per-layer protocol, and why (not).
            from repro.coding.registry import timestep_support

            problems = []
            for coding in sorted({m.coding for m in self.methods}):
                supported, note = timestep_support(coding)
                if not supported:
                    problems.append(f"{coding}: {note}")
            if problems:
                raise ConfigError(
                    "the timestep simulator cannot faithfully model every "
                    "requested method -- " + "; ".join(problems) + " -- "
                    "drop those method(s) (e.g. restrict the sweep with "
                    "--methods) or use simulator='transport'"
                )


def filter_methods(
    methods: Sequence[MethodSpec], labels: Optional[Sequence[str]]
) -> Tuple[MethodSpec, ...]:
    """Restrict a method list to the given display labels (case-insensitive).

    ``None`` keeps every method.  A selection that matches zero curves is an
    error, never a silent empty sweep: unknown labels raise naming the
    available ones (a typo cannot drop a curve), and an explicitly empty
    label list raises instead of degenerating to "all" or "none".  Used by
    the ``--methods`` CLI flag to run a subset of a figure's curves -- e.g.
    only the ones the faithful timestep simulator models.
    """
    if labels is None:
        return tuple(methods)
    labels = list(labels)
    if not labels:
        raise ConfigError(
            "the method filter matched zero curves: an empty label list "
            "selects nothing; omit the filter to keep every method "
            f"(available: {[m.display_label() for m in methods]})"
        )
    by_label = {method.display_label().lower(): method for method in methods}
    selected = []
    unknown = []
    for label in labels:
        method = by_label.get(str(label).lower())
        if method is None:
            unknown.append(label)
        else:
            selected.append(method)
    if unknown:
        raise ConfigError(
            f"unknown method label(s) {unknown}; available: "
            f"{[m.display_label() for m in methods]}"
        )
    return tuple(selected)


#: Noise levels used by the paper.
PAPER_DELETION_LEVELS: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(0, 10))
PAPER_JITTER_LEVELS: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)

#: Reduced level grids used by the benchmark harness (same range, fewer points).
BENCH_DELETION_LEVELS: Tuple[float, ...] = (0.0, 0.2, 0.5, 0.8, 0.9)
BENCH_JITTER_LEVELS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0)

#: Noise levels reported in Table I / Table II.
TABLE1_DELETION_LEVELS: Tuple[float, ...] = (0.0, 0.2, 0.5, 0.8)
TABLE2_JITTER_LEVELS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0)

#: Hardware-fault noise axes (extension; see :mod:`repro.noise.faults`).
FAULT_NOISE_KINDS: Tuple[str, ...] = ("dead", "stuck", "burst_error")

#: Every valid ``SweepConfig.noise_kind``.
NOISE_KINDS: Tuple[str, ...] = ("deletion", "jitter") + FAULT_NOISE_KINDS

#: Fault fractions swept by the hardware-fault robustness curves.
FAULT_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)
BURST_ERROR_LEVELS: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75)

#: Fault fractions reported in the fault-robustness table.
TABLE3_FAULT_LEVELS: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)

#: Perturbation budgets swept by the adversarial robustness curves (number
#: of single-spike moves the adversary may chain; 0 is the clean point).
BENCH_ATTACK_BUDGETS: Tuple[int, ...] = (0, 1, 2, 4, 8)

#: Default maximum time-step displacement of one ``shift`` move.
DEFAULT_SHIFT_DELTA = 2

#: Default number of one-move candidates scored per search step.
DEFAULT_MAX_CANDIDATES = 64


@dataclass(frozen=True)
class AttackSweepConfig:
    """A worst-case robustness sweep: dataset, methods, attack axis, budgets.

    The adversarial counterpart of :class:`SweepConfig`: instead of an
    i.i.d. noise axis it walks a *perturbation budget* axis, and every cell
    runs a per-sample attack search (:mod:`repro.noise.adversarial`) instead
    of a random noise draw.  Duck-types the surface the sweep runner,
    reporting and result assembly consume (``dataset`` / ``methods`` /
    ``noise_kind`` / ``levels`` / ``scale`` / ``seed``), so adversarial
    sweeps flow through the same executor engine, result store and figure
    formatting as every other sweep.

    Attributes
    ----------
    dataset:
        Dataset name.
    methods:
        The coder configurations attacked (one per curve).
    attack_kind:
        Perturbation space: ``"delete"`` (remove spikes), ``"shift"`` (move
        spikes by up to ``shift_delta`` steps) or ``"insert"`` (force extra
        spikes).
    budgets:
        Perturbation budgets on the x-axis -- the maximum number of
        single-spike moves per sample (integers; 0 = clean).
    search:
        Attack driver: ``"greedy"`` / ``"beam"`` (scored searches) or
        ``"random"`` (the matched-budget unscored baseline).
    shift_delta:
        Maximum displacement of one shift move (``shift`` kind only).
    beam_width:
        Beam width (``beam`` search only).
    max_candidates:
        Candidates scored per search step (caps the per-sample cost).
    evaluator:
        Where the *accuracy* is measured: ``"transport"`` evaluates the
        found attacks on the fast evaluator that also scored the search;
        ``"timestep"`` transfer-evaluates them on the faithful membrane
        simulation, measuring the transport->faithful attack gap.  The
        search itself always runs on transport (scoring hundreds of
        candidates per sample is only tractable there).
    spike_backend / analog_backend:
        Backend overrides for the deeper (non-attacked) interfaces; the
        attacked input train itself is always event-backed.
    """

    dataset: str
    methods: Tuple[MethodSpec, ...]
    attack_kind: str
    budgets: Tuple[int, ...]
    scale: ExperimentScale = BENCH_SCALE
    seed: int = 0
    search: str = "greedy"
    shift_delta: int = DEFAULT_SHIFT_DELTA
    beam_width: int = 4
    max_candidates: int = DEFAULT_MAX_CANDIDATES
    evaluator: str = "transport"
    spike_backend: Optional[str] = None
    analog_backend: Optional[str] = None

    def __post_init__(self) -> None:
        validate_choice("attack_kind", self.attack_kind, ATTACK_KINDS)
        validate_choice("search", self.search, ATTACK_SEARCHES)
        validate_choice("evaluator", self.evaluator, SIMULATORS)
        if not self.methods:
            raise ConfigError("an attack sweep needs at least one method")
        if not self.budgets:
            raise ConfigError("an attack sweep needs at least one budget")
        for budget in self.budgets:
            check_non_negative("budget", budget)
            if int(budget) != budget:
                raise ConfigError(
                    f"attack budgets are move counts (integers), got {budget!r}"
                )
        check_positive("shift_delta", self.shift_delta)
        check_positive("beam_width", self.beam_width)
        check_positive("max_candidates", self.max_candidates)
        if self.spike_backend is not None:
            validate_choice("spike_backend", self.spike_backend, SPIKE_BACKENDS)
        if self.analog_backend is not None:
            validate_choice("analog_backend", self.analog_backend, ANALOG_BACKENDS)
        # Per-capability validation, mirroring SweepConfig's timestep check:
        # each coding declares whether the attack engine can search it, and
        # transfer evaluation additionally needs the faithful simulator.
        from repro.coding.registry import adversarial_support, timestep_support

        problems = []
        for coding in sorted({m.coding for m in self.methods}):
            supported, note = adversarial_support(coding)
            if not supported:
                problems.append(f"{coding}: {note}")
            elif self.evaluator == "timestep":
                supported, note = timestep_support(coding)
                if not supported:
                    problems.append(f"{coding} (transfer evaluation): {note}")
        if problems:
            raise ConfigError(
                "the adversarial attack engine cannot handle every requested "
                "method -- " + "; ".join(problems) + " -- drop those "
                "method(s) (e.g. restrict the sweep with --methods) or use "
                "evaluator='transport'"
            )

    @property
    def noise_kind(self) -> str:
        """The sweep's axis name as rendered by figures/tables/logs."""
        return f"adv-{self.attack_kind}"

    @property
    def levels(self) -> Tuple[float, ...]:
        """The budgets as floats -- the x-axis the reporting layer plots."""
        return tuple(float(b) for b in self.budgets)
