"""Micro-benchmark of the spike-train hot paths: dense vs event backend.

Times encode / delete / jitter / decode (and the full delete -> jitter ->
decode corruption chain every sweep cell runs) at the sparsity levels the
temporal codes actually produce -- TTFS (<= 1 spike per neuron) and TTAS
(<= t_a spikes per neuron) at T=64 -- on both spike-train backends, and
writes the results to ``BENCH_hot_paths.json`` at the repository root so the
performance trajectory is tracked across PRs.

Run it as a plain script (pytest naming conventions skip ``bench_*`` files)::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py

Knobs: ``--population`` (default 4096), ``--batch`` (default 16),
``--repeats`` (default 15).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not os.environ.get("PYTHONPATH") or "repro" not in sys.modules:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.coding.registry import create_coder
from repro.metrics.spikes import spike_train_sparsity

#: Output file, at the repository root so it is versioned with the code.
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_hot_paths.json")

#: Noise levels of the timed corruption chain (paper's mid-range).
DELETION_P = 0.2
JITTER_SIGMA = 1.5


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs (1 warm-up)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def bench_coder(
    name: str, coder, values: np.ndarray, repeats: int
) -> Dict[str, Dict[str, float]]:
    """Time every hot-path op on both backends for one coder."""
    results: Dict[str, Dict[str, float]] = {}
    trains = {
        "dense": coder.encode(values, backend="dense"),
        "events": coder.encode(values, backend="events"),
    }
    results["sparsity"] = {
        backend: spike_train_sparsity(train) for backend, train in trains.items()
    }
    for backend, train in trains.items():
        deleted = train.delete_spikes(DELETION_P, rng=0)
        timings = {
            "encode": _time(lambda: coder.encode(values, backend=backend), repeats),
            "delete": _time(lambda: train.delete_spikes(DELETION_P, rng=1), repeats),
            "jitter": _time(
                lambda: deleted.jitter_spikes(JITTER_SIGMA, rng=2), repeats
            ),
            "decode": _time(lambda: coder.decode(train), repeats),
            "delete_jitter_decode": _time(
                lambda: coder.decode(
                    train.delete_spikes(DELETION_P, rng=3)
                    .jitter_spikes(JITTER_SIGMA, rng=4)
                ),
                repeats,
            ),
        }
        results[backend] = timings
    results["speedup_dense_over_events"] = {
        op: results["dense"][op] / results["events"][op]
        for op in results["dense"]
    }
    print(f"\n{name} (T={coder.num_steps}, "
          f"sparsity={results['sparsity']['events']:.3f})")
    header = f"  {'op':<22}{'dense':>12}{'events':>12}{'speedup':>10}"
    print(header)
    for op in results["dense"]:
        dense_ms = results["dense"][op] * 1e3
        events_ms = results["events"][op] * 1e3
        ratio = results["speedup_dense_over_events"][op]
        print(f"  {op:<22}{dense_ms:>10.2f}ms{events_ms:>10.2f}ms{ratio:>9.1f}x")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, default=4096,
                        help="neurons per sample (default 4096)")
    parser.add_argument("--batch", type=int, default=16,
                        help="samples per train (default 16)")
    parser.add_argument("--num-steps", type=int, default=64,
                        help="time window T (default 64)")
    parser.add_argument("--repeats", type=int, default=15,
                        help="timing repeats per op (default 15)")
    parser.add_argument("--output", default=OUTPUT_PATH,
                        help=f"JSON output path (default {OUTPUT_PATH})")
    args = parser.parse_args(argv)

    values = np.random.default_rng(0).random((args.batch, args.population))
    coders = {
        "ttfs": create_coder("ttfs", num_steps=args.num_steps),
        "ttas(3)": create_coder("ttas", num_steps=args.num_steps,
                                target_duration=3),
        "ttas(5)": create_coder("ttas", num_steps=args.num_steps,
                                target_duration=5),
    }
    report = {
        "config": {
            "population": args.population,
            "batch": args.batch,
            "num_steps": args.num_steps,
            "repeats": args.repeats,
            "deletion_p": DELETION_P,
            "jitter_sigma": JITTER_SIGMA,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "results": {},
    }
    for name, coder in coders.items():
        report["results"][name] = bench_coder(name, coder, values, args.repeats)

    chain_speedups = {
        name: result["speedup_dense_over_events"]["delete_jitter_decode"]
        for name, result in report["results"].items()
    }
    report["summary"] = {
        "chain_speedup_min": min(chain_speedups.values()),
        "chain_speedup_max": max(chain_speedups.values()),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")
    print("delete->jitter->decode speedups (dense/events): "
          + ", ".join(f"{k}={v:.1f}x" for k, v in chain_speedups.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
