"""The paper's core contribution: noise-robust deep SNNs.

This package combines the substrates (DNN training, conversion, coding,
noise) into the system the paper proposes:

* :mod:`repro.core.weight_scaling` -- the weight-scaling compensation
  ``W' = C W`` for deletion noise,
* :mod:`repro.core.transport` -- the fast activation-transport evaluator used
  for every figure/table sweep,
* :mod:`repro.core.pipeline` -- :class:`NoiseRobustSNN`, the end-to-end
  public API (train DNN -> convert -> evaluate under noise),
* :mod:`repro.core.analysis` -- the activation-distribution analysis of
  Sec. III / Fig. 5B,
* :mod:`repro.core.timestep` -- helpers that instantiate the faithful
  time-stepped simulator from a converted network.
"""

from repro.core.weight_scaling import WeightScaling
from repro.core.transport import (
    ActivationTransportSimulator,
    TransportResult,
)
from repro.core.pipeline import EvaluationResult, NoiseRobustSNN
from repro.core.servable import ServableModel
from repro.core.analysis import (
    activation_distribution,
    all_or_none_fraction,
    expected_activation_ratio,
)
from repro.core.timestep import build_time_stepped_simulator, evaluate_timestep
from repro.core.calibration import BurstDurationChoice, select_burst_duration

__all__ = [
    "BurstDurationChoice",
    "select_burst_duration",
    "WeightScaling",
    "ActivationTransportSimulator",
    "TransportResult",
    "NoiseRobustSNN",
    "EvaluationResult",
    "ServableModel",
    "activation_distribution",
    "all_or_none_fraction",
    "expected_activation_ratio",
    "build_time_stepped_simulator",
    "evaluate_timestep",
]
