"""Budgeted adversarial spike-timing perturbations and search drivers.

Random noise (deletion, jitter, faults) measures *average-case* robustness;
this module measures the *worst case* an adversary with a perturbation budget
can force.  A perturbation space enumerates single-spike moves over the event
backend -- delete one spike, shift one spike by up to ``delta`` steps, insert
one spike -- and a search driver (greedy or beam) chains up to ``budget``
moves, scoring candidate trains with a caller-supplied batched margin scorer.
A matched-budget random driver provides the baseline the adversarial curve is
plotted against.

Everything here is pure event-array manipulation plus stateless RNG
derivation: the same ``(train, budget, rng)`` triple always yields the same
perturbed train, bit for bit, no matter which executor, shard or worker runs
the search.  That determinism is what lets the execution engine treat an
attack search as just another content-addressed, resumable sweep cell
(:mod:`repro.execution.attack`).

The scorer contract: ``score(trains) -> margins`` takes a list of
single-sample event trains and returns one *classification margin* per train
(true-class logit minus the best other logit).  Lower is worse for the
network; a negative margin means the candidate already flips the prediction.
Scorers batch all candidates into one stacked forward pass
(:func:`stack_trains`), which is what keeps greedy search tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.snn.spikes import SpikeEvents, SpikeTrain
from repro.utils.rng import RngLike, derive_rng_at, stream_root
from repro.utils.validation import check_non_negative

#: Supported perturbation spaces (CLI / config spelling).
ATTACK_KINDS = ("delete", "shift", "insert")

#: Supported search drivers.
ATTACK_SEARCHES = ("greedy", "beam", "random")

#: A batched margin scorer: list of candidate trains -> margin per train.
MarginScorer = Callable[[Sequence[SpikeEvents]], np.ndarray]


@dataclass
class AttackOutcome:
    """Result of one per-sample attack search.

    Attributes
    ----------
    train:
        The chosen (worst-found) perturbed train.
    margin:
        Classification margin of ``train`` under the search scorer (NaN for
        the unscored random driver).
    moves:
        Number of single-spike moves actually applied (``<= budget``; greedy
        stops early only when an *exhaustive* candidate round finds no
        non-worsening move -- it keeps deepening the margin after a flip,
        which is what makes found attacks transfer across evaluators).
    candidates_scored:
        Total number of candidate trains scored during the search -- the
        work unit reported by the ``adversarial_search`` benchmark.
    """

    train: SpikeEvents
    margin: float
    moves: int
    candidates_scored: int


def as_events(train: SpikeTrain) -> SpikeEvents:
    """Normalise either spike backend into a canonical event train."""
    events = train.to_events()
    events.occupied_slots()  # force canonical (time, neuron)-sorted order
    return events


def stack_trains(trains: Sequence[SpikeEvents]) -> SpikeEvents:
    """Stack single-sample trains into one batched train.

    Candidate ``i`` occupies batch slot ``i`` of the returned train's
    ``(len(trains), *population_shape)`` population, so a scorer evaluates
    every candidate in one forward pass instead of ``len(trains)`` passes.
    """
    if not trains:
        raise ValueError("stack_trains needs at least one train")
    base = trains[0]
    shape = base.population_shape
    num_steps = base.num_steps
    stride = base.num_neurons
    times: List[np.ndarray] = []
    neurons: List[np.ndarray] = []
    counts: List[np.ndarray] = []
    for slot, train in enumerate(trains):
        if train.num_steps != num_steps or train.population_shape != shape:
            raise ValueError(
                "stack_trains requires identical window and population; got "
                f"({train.num_steps}, {train.population_shape}) vs "
                f"({num_steps}, {shape})"
            )
        times.append(train.times)
        neurons.append(train.neuron_indices + slot * stride)
        counts.append(train.event_counts)
    return SpikeEvents(
        np.concatenate(times), np.concatenate(neurons), np.concatenate(counts),
        num_steps, (len(trains),) + shape,
    )


def classification_margins(logits: np.ndarray, label: int) -> np.ndarray:
    """Per-row margin of the true class over the best other class."""
    logits = np.asarray(logits, dtype=np.float64)
    true_scores = logits[:, label].copy()
    others = logits.copy()
    others[:, label] = -np.inf
    return true_scores - others.max(axis=1)


# ---------------------------------------------------------------------------
# Perturbation spaces
# ---------------------------------------------------------------------------
class PerturbationSpace:
    """One family of budgeted single-spike moves over an event train.

    ``candidates`` proposes up to ``max_candidates`` trains that differ from
    ``train`` by exactly one move (for the search drivers); ``random_move``
    applies one uniformly random move of the same family (for the
    matched-budget random baseline).  Both are pure: candidate order and
    sampling depend only on the supplied generator and the train's canonical
    event order.
    """

    kind = ""

    def candidates(
        self,
        train: SpikeEvents,
        rng: np.random.Generator,
        max_candidates: int,
    ) -> List[SpikeEvents]:
        raise NotImplementedError

    def random_move(
        self, train: SpikeEvents, rng: np.random.Generator
    ) -> SpikeEvents:
        raise NotImplementedError

    @staticmethod
    def _pick(count: int, rng: np.random.Generator, limit: int) -> np.ndarray:
        """Indices of the proposals to keep: all of them, or a random subset.

        Sorted so candidate order stays canonical even when subsampled.
        """
        if count <= limit:
            return np.arange(count)
        return np.sort(rng.choice(count, size=limit, replace=False))

    @staticmethod
    def _pick_spike(
        train: SpikeEvents, rng: np.random.Generator
    ) -> int:
        """One event index, each *spike* (not slot) equally likely."""
        weights = train.event_counts / train.event_counts.sum()
        return int(rng.choice(train.event_counts.size, p=weights))


class DeleteSpace(PerturbationSpace):
    """Remove one spike per move (decrement one occupied slot)."""

    kind = "delete"

    def candidates(self, train, rng, max_candidates):
        train = as_events(train)
        num_events = train.times.size
        if num_events == 0:
            return []
        out: List[SpikeEvents] = []
        for index in self._pick(num_events, rng, max_candidates):
            counts = train.event_counts.copy()
            counts[index] -= 1
            out.append(SpikeEvents(
                train.times, train.neuron_indices, counts,
                train.num_steps, train.population_shape,
            ))
        return out

    def random_move(self, train, rng):
        train = as_events(train)
        if train.times.size == 0:
            return train.view()
        counts = train.event_counts.copy()
        counts[self._pick_spike(train, rng)] -= 1
        return SpikeEvents(
            train.times, train.neuron_indices, counts,
            train.num_steps, train.population_shape,
        )


class ShiftSpace(PerturbationSpace):
    """Move one spike by ``s`` steps, ``s`` in ``[-delta, delta] \\ {0}``."""

    kind = "shift"

    def __init__(self, delta: int = 2):
        if delta < 1:
            raise ValueError(f"shift delta must be >= 1, got {delta}")
        self.delta = int(delta)

    def _moved(
        self, train: SpikeEvents, event_index: int, new_time: int
    ) -> SpikeEvents:
        """One spike of ``event_index`` moved to ``new_time`` (same neuron)."""
        counts = train.event_counts.copy()
        counts[event_index] -= 1
        return SpikeEvents(
            np.append(train.times, np.int64(new_time)),
            np.append(train.neuron_indices, train.neuron_indices[event_index]),
            np.append(counts, np.int64(1)),
            train.num_steps, train.population_shape,
        )

    def _valid_moves(self, train: SpikeEvents):
        """All (event index, shifted time) pairs inside the window."""
        shifts = np.array(
            [s for s in range(-self.delta, self.delta + 1) if s != 0],
            dtype=np.int64,
        )
        indices = np.repeat(np.arange(train.times.size), shifts.size)
        shifted = np.tile(shifts, train.times.size) + train.times[indices]
        valid = (shifted >= 0) & (shifted < train.num_steps)
        return indices[valid], shifted[valid]

    def candidates(self, train, rng, max_candidates):
        train = as_events(train)
        if train.times.size == 0:
            return []
        indices, shifted = self._valid_moves(train)
        picks = self._pick(indices.size, rng, max_candidates)
        return [
            self._moved(train, int(indices[p]), int(shifted[p])) for p in picks
        ]

    def random_move(self, train, rng):
        train = as_events(train)
        if train.times.size == 0:
            return train.view()
        event_index = self._pick_spike(train, rng)
        time = int(train.times[event_index])
        moves = [
            time + s
            for s in range(-self.delta, self.delta + 1)
            if s != 0 and 0 <= time + s < train.num_steps
        ]
        if not moves:
            return train.view()
        return self._moved(train, event_index, int(rng.choice(moves)))


class InsertSpace(PerturbationSpace):
    """Force one extra spike per move, anywhere on the ``(T, N)`` grid."""

    kind = "insert"

    @staticmethod
    def _inserted(train: SpikeEvents, time: int, neuron: int) -> SpikeEvents:
        return SpikeEvents(
            np.append(train.times, np.int64(time)),
            np.append(train.neuron_indices, np.int64(neuron)),
            np.append(train.event_counts, np.int64(1)),
            train.num_steps, train.population_shape,
        )

    def candidates(self, train, rng, max_candidates):
        train = as_events(train)
        total_slots = train.num_steps * train.num_neurons
        picks = self._pick(total_slots, rng, max_candidates)
        return [
            self._inserted(train, *divmod(int(slot), train.num_neurons))
            for slot in picks
        ]

    def random_move(self, train, rng):
        train = as_events(train)
        slot = int(rng.integers(train.num_steps * train.num_neurons))
        return self._inserted(train, *divmod(slot, train.num_neurons))


def make_space(kind: str, shift_delta: int = 2) -> PerturbationSpace:
    """Build the perturbation space for an attack kind."""
    if kind == "delete":
        return DeleteSpace()
    if kind == "shift":
        return ShiftSpace(delta=shift_delta)
    if kind == "insert":
        return InsertSpace()
    raise ValueError(f"attack kind must be one of {ATTACK_KINDS}, got {kind!r}")


# ---------------------------------------------------------------------------
# Search drivers
# ---------------------------------------------------------------------------
def greedy_attack(
    train: SpikeTrain,
    space: PerturbationSpace,
    budget: int,
    score: MarginScorer,
    rng: RngLike = None,
    max_candidates: int = 64,
) -> AttackOutcome:
    """Chain up to ``budget`` locally-worst moves.

    Each step scores the incumbent train *and* up to ``max_candidates``
    one-move candidates in a single batched call and keeps the margin
    minimiser.  The search runs the full budget -- deliberately deepening
    the margin past the first flip, so found attacks survive evaluator
    disagreements (the transport->timestep transfer) -- and stops early
    only when an exhaustive round proves a local minimum.

    The incumbent rides along in every call on purpose: for stochastic
    coders the scorer's margins carry per-slot encoding noise, so a margin
    remembered from an earlier call is an unfair (optimistically biased,
    best-of-N) baseline that stalls the search after a handful of moves.
    Comparing candidates against the incumbent's margin *from the same
    call* keeps every decision within one realisation.

    Two refinements keep the search from stalling prematurely:

    * *Plateau walking.*  The transport scorer quantises interface
      activations to spike counts, so single moves frequently land on a
      margin plateau (delta exactly 0).  A tied best candidate is accepted
      -- the cumulative analog mass of plateau moves eventually crosses the
      next quantisation boundary, where margins resume dropping.  Strictly
      worsening moves are never taken.
    * *Resampling.*  A round whose candidates are all strictly worse only
      ends the search when it enumerated the *whole* move space; a
      subsampled round (large trains, ``max_candidates`` below the space
      size) proves nothing about the unseen moves, so the search resamples
      on the next round -- budget bounds the number of rounds either way.
    """
    check_non_negative("budget", budget)
    root = stream_root(rng)
    current = as_events(train)
    margin = float(np.asarray(score([current]))[0])
    scored = 1
    moves = 0
    for step in range(int(budget)):
        proposals = space.candidates(
            current, derive_rng_at(root, "candidates", step), max_candidates
        )
        if not proposals:
            break
        margins = np.asarray(score([current] + proposals), dtype=np.float64)
        scored += len(proposals) + 1
        margin = float(margins[0])
        best = 1 + int(margins[1:].argmin())
        if margins[best] > margin:
            if len(proposals) < max_candidates:
                break  # exhaustive round: a true local minimum
            continue
        current = proposals[best - 1]
        margin = float(margins[best])
        moves += 1
    return AttackOutcome(
        train=current, margin=margin, moves=moves, candidates_scored=scored
    )


def beam_attack(
    train: SpikeTrain,
    space: PerturbationSpace,
    budget: int,
    score: MarginScorer,
    rng: RngLike = None,
    beam_width: int = 4,
    max_candidates: int = 64,
) -> AttackOutcome:
    """Width-``beam_width`` beam search over move chains.

    Every step each beam branch proposes ``max_candidates / width``
    one-move extensions; the best-so-far train and the pooled proposals are
    scored in one batched call and the ``beam_width`` lowest margins
    survive.  Returns the globally lowest-margin train seen (which may use
    fewer than ``budget`` moves).

    As in :func:`greedy_attack`, the best-so-far train is re-scored inside
    every call so that, under a stochastic scorer, the front of the beam is
    compared against it within a single realisation rather than against a
    stale best-of-N margin.
    """
    check_non_negative("budget", budget)
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    root = stream_root(rng)
    start = as_events(train)
    margin = float(np.asarray(score([start]))[0])
    scored = 1
    beam = [start]
    best = AttackOutcome(
        train=start, margin=margin, moves=0, candidates_scored=scored
    )
    for step in range(int(budget)):
        per_branch = max(1, max_candidates // len(beam))
        proposals: List[SpikeEvents] = []
        for branch, candidate in enumerate(beam):
            proposals.extend(space.candidates(
                candidate,
                derive_rng_at(root, "beam", step, branch),
                per_branch,
            ))
        if not proposals:
            break
        margins = np.asarray(score([best.train] + proposals), dtype=np.float64)
        scored += len(proposals) + 1
        best_margin = float(margins[0])
        proposal_margins = margins[1:]
        order = np.argsort(proposal_margins, kind="stable")[:beam_width]
        beam = [proposals[int(i)] for i in order]
        front = float(proposal_margins[int(order[0])])
        if front < best_margin:
            best = AttackOutcome(
                train=beam[0], margin=front, moves=step + 1,
                candidates_scored=scored,
            )
        else:
            best = AttackOutcome(
                train=best.train, margin=best_margin, moves=best.moves,
                candidates_scored=scored,
            )
    return AttackOutcome(
        train=best.train, margin=best.margin, moves=best.moves,
        candidates_scored=scored,
    )


def random_attack(
    train: SpikeTrain,
    space: PerturbationSpace,
    budget: int,
    rng: RngLike = None,
) -> AttackOutcome:
    """Apply exactly ``budget`` random moves -- the matched-budget baseline.

    Unscored (margin is NaN): this is the control the adversarial curves are
    compared against, spending the same budget blindly.
    """
    check_non_negative("budget", budget)
    root = stream_root(rng)
    current = as_events(train)
    for move in range(int(budget)):
        current = space.random_move(current, derive_rng_at(root, "move", move))
    return AttackOutcome(
        train=current, margin=float("nan"), moves=int(budget),
        candidates_scored=0,
    )


def run_attack_search(
    train: SpikeTrain,
    kind: str,
    search: str,
    budget: int,
    score: MarginScorer,
    rng: RngLike = None,
    shift_delta: int = 2,
    beam_width: int = 4,
    max_candidates: int = 64,
) -> AttackOutcome:
    """Dispatch one per-sample attack search by (kind, search) name.

    The single entry point the attack-plan evaluator and the determinism
    tests share: a pure function of its arguments, so the same inputs yield
    the same perturbed train on every executor, shard and worker count.
    """
    space = make_space(kind, shift_delta=shift_delta)
    if search == "greedy":
        return greedy_attack(
            train, space, budget, score, rng=rng, max_candidates=max_candidates
        )
    if search == "beam":
        return beam_attack(
            train, space, budget, score, rng=rng,
            beam_width=beam_width, max_candidates=max_candidates,
        )
    if search == "random":
        return random_attack(train, space, budget, rng=rng)
    raise ValueError(
        f"search must be one of {ATTACK_SEARCHES}, got {search!r}"
    )
