"""Weight scaling against deletion noise (Sec. IV of the paper).

Spike deletion with probability ``p`` reduces the expected post-synaptic
current of an activation ``A`` to ``(1 - p) A``.  Weight scaling compensates
by multiplying the synaptic weights by a factor ``C`` chosen from the
expected deletion probability, so the effective activation is restored
without retraining -- the property that makes the approach compatible with
DNN-to-SNN conversion.

Two factor rules are provided:

* ``"inverse"`` (default): ``C = 1 / (1 - p)``, the exact inverse of the
  expected loss,
* ``"proportional"``: ``C = 1 + alpha * p``, the simpler rule the paper
  describes as "proportional to the deletion probability" (alpha = 1 by
  default).

Because spikes carry the activations but biases are injected as constant
currents, the scaling applies to spike-borne PSC only -- which is how the
transport evaluator applies it (decoded PSC is multiplied by ``C`` before the
segment's weights, equivalent to ``W' = C W`` with unscaled bias).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.config import validate_choice
from repro.utils.validation import check_non_negative, check_probability

#: Factor rules understood by :class:`WeightScaling`.
FACTOR_MODES = ("inverse", "proportional", "none")


@dataclass(frozen=True)
class WeightScaling:
    """Weight-scaling policy.

    Attributes
    ----------
    mode:
        One of ``"inverse"``, ``"proportional"``, ``"none"``.
    alpha:
        Slope of the proportional rule (ignored by the other modes).
    max_factor:
        Upper bound on the scale factor; ``1/(1-p)`` diverges as p -> 1 and
        real hardware cannot scale weights arbitrarily.
    """

    mode: str = "inverse"
    alpha: float = 1.0
    max_factor: float = 10.0

    def __post_init__(self) -> None:
        validate_choice("mode", self.mode, FACTOR_MODES)
        check_non_negative("alpha", self.alpha)
        check_non_negative("max_factor", self.max_factor)

    @classmethod
    def disabled(cls) -> "WeightScaling":
        """A policy that never scales (the "no WS" baselines of the paper)."""
        return cls(mode="none")

    @property
    def enabled(self) -> bool:
        """True when this policy actually scales weights."""
        return self.mode != "none"

    def factor(self, deletion_probability: float) -> float:
        """Scale factor ``C`` for an expected deletion probability ``p``."""
        p = check_probability("deletion_probability", deletion_probability)
        if self.mode == "none" or p == 0.0:
            return 1.0
        if self.mode == "inverse":
            if p >= 1.0:
                return self.max_factor
            factor = 1.0 / (1.0 - p)
        else:  # proportional
            factor = 1.0 + self.alpha * p
        return float(min(factor, self.max_factor))

    def factors(self, deletion_probabilities: List[float]) -> List[float]:
        """Vectorised :meth:`factor` over a sweep of deletion probabilities."""
        return [self.factor(p) for p in deletion_probabilities]

    def scale_weights(self, weights: np.ndarray, deletion_probability: float) -> np.ndarray:
        """Return ``C * weights`` -- the literal ``W' = C W`` of the paper."""
        return np.asarray(weights) * self.factor(deletion_probability)

    def describe(self) -> str:
        """Short label used in figure legends ("+WS" / "")."""
        if not self.enabled:
            return "no scaling"
        if self.mode == "inverse":
            return "WS (C = 1/(1-p))"
        return f"WS (C = 1 + {self.alpha:g} p)"
